//! Deterministic fault injection — first-class fault plans.
//!
//! The paper's model has no faults: a correct protocol never sees a
//! corrupted message, never stalls, never loses a processor. That makes
//! the *failure paths* of this simulator — every [`SimError`] variant —
//! unreachable from correct protocols, and historically they were
//! exercised only by ad-hoc corrupting adapters buried in integration
//! tests. A [`FaultPlan`] turns fault injection into a library
//! capability: a deterministic schedule of injections, keyed by
//! `(position, per-position delivery count)`, that every engine applies
//! at exactly the same point of the execution. Equal plans on equal
//! runs give equal failures — fault injection is as reproducible as the
//! runs themselves.
//!
//! The plan is evaluated on the *receiving* side of a delivery:
//!
//! * [`FaultAction::Corrupt`] rewrites the payload before the handler
//!   (and before the trace records the delivery — the trace shows what
//!   the processor actually saw);
//! * [`FaultAction::Stall`] discards the handler's sends and decision,
//!   making the processor appear unresponsive for that event;
//! * [`FaultAction::InjectSend`] / [`FaultAction::InjectDecide`] append
//!   effects after the handler, as if the processor had emitted them —
//!   the direct route to [`SimError::IllegalSend`],
//!   [`SimError::FollowerDecided`], and (by flooding)
//!   [`SimError::EventLimitExceeded`];
//! * [`FaultAction::KillShard`] terminates the engine worker that owns
//!   the receiving processor (sharded and threaded engines; the serial
//!   engine has no worker to kill and ignores it), producing a
//!   deterministic [`SimError::ShardFailed`];
//! * [`FaultAction::Delay`] sleeps before handling — wall-clock only,
//!   observables unchanged, for exercising timeouts and backpressure.
//!
//! [`SimError`]: crate::SimError
//! [`SimError::IllegalSend`]: crate::SimError::IllegalSend
//! [`SimError::FollowerDecided`]: crate::SimError::FollowerDecided
//! [`SimError::EventLimitExceeded`]: crate::SimError::EventLimitExceeded
//! [`SimError::ShardFailed`]: crate::SimError::ShardFailed

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ringleader_bitio::BitString;

use crate::Direction;

/// A payload rewrite applied to a message as it is delivered.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Corruption {
    /// Drop the last `k` bits (saturating: at most the whole message).
    TruncateBits(usize),
    /// Flip the bit at a 0-based index; an out-of-range index leaves the
    /// message intact.
    FlipBit(usize),
    /// Replace the payload with the empty message.
    Zero,
}

impl Corruption {
    /// The corrupted form of `payload`.
    #[must_use]
    pub fn apply(&self, payload: &BitString) -> BitString {
        match self {
            Corruption::TruncateBits(k) => payload.slice(0..payload.len().saturating_sub(*k)),
            Corruption::FlipBit(i) => BitString::from_bits(
                payload.iter().enumerate().map(|(j, b)| if j == *i { !b } else { b }),
            ),
            Corruption::Zero => BitString::new(),
        }
    }
}

/// What a [`Fault`] does when it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultAction {
    /// Rewrite the delivered payload before the handler sees it.
    Corrupt(Corruption),
    /// Discard the handler's sends and decision for this delivery.
    Stall,
    /// Append a send after the handler returns, as if the receiving
    /// processor had sent it.
    InjectSend {
        /// Direction of the injected message.
        direction: Direction,
        /// Payload of the injected message.
        payload: BitString,
    },
    /// Force a decision after the handler returns, as if the receiving
    /// processor had decided.
    InjectDecide {
        /// The forced decision.
        accept: bool,
    },
    /// Kill the engine worker owning the receiving processor before the
    /// message is handled. Sharded runs fail with a deterministic
    /// [`SimError::ShardFailed`](crate::SimError::ShardFailed); threaded
    /// runs lose the processor's thread (and stall out). The serial
    /// engine has no worker to kill and ignores this action.
    KillShard,
    /// Sleep for this long before handling the message. Wall-clock only:
    /// no observable (trace, stats, decision) changes.
    Delay {
        /// Sleep duration in microseconds.
        micros: u64,
    },
}

/// One scheduled injection: fire `action` when the processor at
/// `position` receives its `delivery`-th message (1-based, counted per
/// receiver — a coordinate every engine agrees on, unlike global event
/// indexes, which shift when tracing toggles seq consumption).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// 0-based position of the receiving processor (leader = 0).
    pub position: usize,
    /// 1-based count of deliveries at `position` at which to fire.
    pub delivery: u64,
    /// Fire on every delivery from `delivery` onwards instead of once.
    pub recurring: bool,
    /// The injection to perform.
    pub action: FaultAction,
}

/// A deterministic schedule of fault injections.
///
/// Plans are applied identically by the serial, sharded, and threaded
/// engines (the threaded engine supports the corrupt/stall/kill subset;
/// see the crate docs). An empty plan is free: engines skip fault lookup
/// entirely.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fault to the plan.
    pub fn push(&mut self, fault: Fault) -> &mut Self {
        self.faults.push(fault);
        self
    }

    /// Whether the plan schedules no faults.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The scheduled faults, in insertion order.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// A seeded plan of `count` one-shot single-bit truncations scattered
    /// uniformly over positions `0..n` and per-position deliveries
    /// `1..=max_delivery`. Equal seeds give equal plans — the fuzzing
    /// entry point for "corrupt *somewhere*, deterministically".
    #[must_use]
    pub fn scatter(seed: u64, n: usize, max_delivery: u64, count: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = Self::new();
        for _ in 0..count {
            let position = rng.gen_range(0..n.max(1));
            let delivery = rng.gen_range(0..max_delivery.max(1)) + 1;
            plan.push(Fault {
                position,
                delivery,
                recurring: false,
                action: FaultAction::Corrupt(Corruption::TruncateBits(1)),
            });
        }
        plan
    }

    /// Resolves every fault firing when `position` receives its
    /// `delivery`-th message, folded into one [`DeliveryFault`]. Returns
    /// `None` (the overwhelmingly common case) when nothing fires.
    pub(crate) fn for_delivery(&self, position: usize, delivery: u64) -> Option<DeliveryFault> {
        let mut hit: Option<DeliveryFault> = None;
        for fault in &self.faults {
            let fires = fault.position == position
                && if fault.recurring {
                    delivery >= fault.delivery
                } else {
                    delivery == fault.delivery
                };
            if !fires {
                continue;
            }
            let slot = hit.get_or_insert_with(DeliveryFault::default);
            match &fault.action {
                FaultAction::Corrupt(c) => slot.corrupt = Some(c.clone()),
                FaultAction::Stall => slot.stall = true,
                FaultAction::InjectSend { direction, payload } => {
                    slot.inject_sends.push((*direction, payload.clone()));
                }
                FaultAction::InjectDecide { accept } => slot.inject_decide = Some(*accept),
                FaultAction::KillShard => slot.kill_shard = true,
                FaultAction::Delay { micros } => slot.delay_micros += micros,
            }
        }
        hit
    }
}

/// Everything the fault plan injects at one delivery, pre-resolved so
/// engines apply it without re-scanning the plan. When several faults
/// fire together, sends and delays accumulate; for corrupt and decide
/// the *last* scheduled fault wins.
#[derive(Debug, Clone, Default)]
pub(crate) struct DeliveryFault {
    pub(crate) corrupt: Option<Corruption>,
    pub(crate) stall: bool,
    pub(crate) kill_shard: bool,
    pub(crate) delay_micros: u64,
    pub(crate) inject_sends: Vec<(Direction, BitString)>,
    pub(crate) inject_decide: Option<bool>,
}

/// Adapter-style fault injectors for tests that need to corrupt at the
/// *protocol* layer (wrapping factories) rather than the delivery layer.
///
/// `#[doc(hidden)]` like [`crate::sched::testkit`]: test-support
/// surface, not part of the supported API. Prefer [`FaultPlan`] — it is
/// engine-applied, position-exact, and checkpointable; the adapter
/// survives for tests of the wrapping technique itself (the Theorem 5
/// cut-link transformation uses the same detached-context pattern).
#[doc(hidden)]
pub mod testkit {
    use ringleader_automata::Symbol;
    use ringleader_bitio::BitString;

    use crate::context::{Context, Process, ProcessResult, Protocol};
    use crate::{Direction, Topology};

    /// Wraps a protocol, truncating the last bit of every message sent by
    /// the process at `at_position` (0 = the leader; any other value
    /// corrupts every follower, since factories cannot see positions) —
    /// a "wire fault" injector.
    pub struct TruncatingAdapter<P> {
        inner: P,
        at_position: usize,
    }

    impl<P> TruncatingAdapter<P> {
        /// Wraps `inner`, corrupting sends leaving `at_position`.
        #[must_use]
        pub fn new(inner: P, at_position: usize) -> Self {
            Self { inner, at_position }
        }
    }

    /// The per-process wrapper [`TruncatingAdapter`] constructs: runs the
    /// inner handler against a detached context, then re-emits its
    /// effects with payloads truncated by one bit.
    pub struct TruncatingProcess {
        inner: Box<dyn Process>,
        corrupt: bool,
    }

    impl Process for TruncatingProcess {
        fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
            self.inner.on_start(ctx)
        }

        fn on_message(
            &mut self,
            dir: Direction,
            msg: &BitString,
            ctx: &mut Context,
        ) -> ProcessResult {
            let mut inner_ctx = Context::detached(ctx.is_leader(), ctx.known_ring_size());
            self.inner.on_message(dir, msg, &mut inner_ctx)?;
            let (sends, decision) = inner_ctx.into_effects();
            for (d, payload) in sends {
                let payload = if self.corrupt && !payload.is_empty() {
                    payload.slice(0..payload.len() - 1)
                } else {
                    payload
                };
                ctx.send(d, payload);
            }
            if let Some(dec) = decision {
                ctx.decide(dec);
            }
            Ok(())
        }
    }

    impl<P: Protocol> Protocol for TruncatingAdapter<P> {
        fn name(&self) -> &'static str {
            "truncating-adapter"
        }

        fn topology(&self) -> Topology {
            self.inner.topology()
        }

        fn leader(&self, input: Symbol) -> Box<dyn Process> {
            Box::new(TruncatingProcess {
                inner: self.inner.leader(input),
                corrupt: self.at_position == 0,
            })
        }

        fn follower(&self, input: Symbol) -> Box<dyn Process> {
            Box::new(TruncatingProcess {
                inner: self.inner.follower(input),
                corrupt: self.at_position != 0,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(s: &str) -> BitString {
        BitString::parse(s).unwrap()
    }

    #[test]
    fn corruption_truncate_saturates() {
        assert_eq!(Corruption::TruncateBits(1).apply(&bits("101")), bits("10"));
        assert_eq!(Corruption::TruncateBits(5).apply(&bits("101")), BitString::new());
    }

    #[test]
    fn corruption_flip_and_zero() {
        assert_eq!(Corruption::FlipBit(0).apply(&bits("101")), bits("001"));
        assert_eq!(Corruption::FlipBit(2).apply(&bits("101")), bits("100"));
        assert_eq!(Corruption::FlipBit(9).apply(&bits("101")), bits("101"));
        assert_eq!(Corruption::Zero.apply(&bits("101")), BitString::new());
    }

    #[test]
    fn one_shot_fires_exactly_once() {
        let mut plan = FaultPlan::new();
        plan.push(Fault { position: 2, delivery: 3, recurring: false, action: FaultAction::Stall });
        assert!(plan.for_delivery(2, 2).is_none());
        assert!(plan.for_delivery(2, 3).is_some_and(|f| f.stall));
        assert!(plan.for_delivery(2, 4).is_none());
        assert!(plan.for_delivery(1, 3).is_none());
    }

    #[test]
    fn recurring_fires_from_delivery_onwards() {
        let mut plan = FaultPlan::new();
        plan.push(Fault {
            position: 0,
            delivery: 2,
            recurring: true,
            action: FaultAction::Corrupt(Corruption::Zero),
        });
        assert!(plan.for_delivery(0, 1).is_none());
        assert!(plan.for_delivery(0, 2).is_some());
        assert!(plan.for_delivery(0, 100).is_some());
    }

    #[test]
    fn coinciding_faults_fold_into_one() {
        let mut plan = FaultPlan::new();
        plan.push(Fault {
            position: 1,
            delivery: 1,
            recurring: false,
            action: FaultAction::Corrupt(Corruption::TruncateBits(1)),
        });
        plan.push(Fault {
            position: 1,
            delivery: 1,
            recurring: false,
            action: FaultAction::InjectSend { direction: Direction::Clockwise, payload: bits("1") },
        });
        plan.push(Fault {
            position: 1,
            delivery: 1,
            recurring: false,
            action: FaultAction::Delay { micros: 5 },
        });
        let f = plan.for_delivery(1, 1).unwrap();
        assert!(f.corrupt.is_some());
        assert_eq!(f.inject_sends.len(), 1);
        assert_eq!(f.delay_micros, 5);
        assert!(!f.stall);
        assert!(!f.kill_shard);
    }

    #[test]
    fn scatter_is_seed_deterministic_and_bounded() {
        let a = FaultPlan::scatter(9, 8, 20, 12);
        let b = FaultPlan::scatter(9, 8, 20, 12);
        assert_eq!(a, b);
        assert_eq!(a.faults().len(), 12);
        for f in a.faults() {
            assert!(f.position < 8);
            assert!((1..=20).contains(&f.delivery));
            assert!(!f.recurring);
        }
        assert_ne!(a, FaultPlan::scatter(10, 8, 20, 12));
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::new().is_empty());
        assert!(FaultPlan::default().for_delivery(0, 1).is_none());
    }
}
