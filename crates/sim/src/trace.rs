//! Execution traces and information states.
//!
//! Theorem 4's lower-bound argument runs on **information states**: the
//! initial letter of a processor together with the ordered sequence of
//! messages (with directions) it sent or received. The trace machinery
//! here records executions precisely enough to extract those states, which
//! the `infostate` experiment (E3) uses to verify the paper's
//! cut-and-splice lemma exhaustively at small `n`.

use serde::{Deserialize, Serialize};

use ringleader_automata::Symbol;
use ringleader_bitio::BitString;

use crate::Direction;

/// What happened in a single trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// A processor handed a message to a link.
    Send,
    /// A link handed a message to a processor.
    Deliver,
}

/// One send or delivery, in global order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Global sequence number (sends and deliveries share one clock).
    pub seq: u64,
    /// The kind of event.
    pub kind: EventKind,
    /// 0-based position of the processor acting (sender or receiver).
    pub position: usize,
    /// Direction of travel of the message.
    pub direction: Direction,
    /// The message bits.
    pub payload: BitString,
}

/// A full record of one execution.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    pub(crate) fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// All events in global order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Extracts the per-processor [`InfoState`]s of this execution.
    ///
    /// `inputs[i]` must be the letter processor `i` held.
    ///
    /// # Panics
    ///
    /// Panics if an event references a position `>= inputs.len()`.
    #[must_use]
    pub fn info_states(&self, inputs: &[Symbol]) -> Vec<InfoState> {
        let mut states: Vec<InfoState> =
            inputs.iter().map(|&input| InfoState { input, entries: Vec::new() }).collect();
        for e in &self.events {
            let kind = match e.kind {
                EventKind::Send => InfoEventKind::Sent,
                EventKind::Deliver => InfoEventKind::Received,
            };
            states[e.position].entries.push(InfoStateEntry {
                kind,
                direction: e.direction,
                payload: e.payload.clone(),
            });
        }
        states
    }
}

/// Whether an information-state entry was a send or a receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InfoEventKind {
    /// The processor sent the message.
    Sent,
    /// The processor received the message.
    Received,
}

/// One entry of an information state: a message the processor sent or
/// received, with its direction of travel.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InfoStateEntry {
    /// Send or receive.
    pub kind: InfoEventKind,
    /// Direction the message travelled.
    pub direction: Direction,
    /// The message bits.
    pub payload: BitString,
}

/// The paper's information state of a processor after an execution: its
/// input letter plus the ordered sends/receives it participated in.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InfoState {
    /// The processor's input letter.
    pub input: Symbol,
    /// Ordered message history.
    pub entries: Vec<InfoStateEntry>,
}

impl InfoState {
    /// Total bits across all entries — a size proxy used when estimating
    /// how many bits are needed to tell `⌈n/2⌉` distinct states apart.
    #[must_use]
    pub fn total_bits(&self) -> usize {
        self.entries.iter().map(|e| e.payload.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, kind: EventKind, position: usize, payload: &str) -> TraceEvent {
        TraceEvent {
            seq,
            kind,
            position,
            direction: Direction::Clockwise,
            payload: BitString::parse(payload).unwrap(),
        }
    }

    #[test]
    fn info_states_partition_events_by_position() {
        let mut t = Trace::default();
        t.push(ev(0, EventKind::Send, 0, "1"));
        t.push(ev(1, EventKind::Deliver, 1, "1"));
        t.push(ev(2, EventKind::Send, 1, "01"));
        t.push(ev(3, EventKind::Deliver, 0, "01"));
        let states = t.info_states(&[Symbol(0), Symbol(1)]);
        assert_eq!(states.len(), 2);
        assert_eq!(states[0].entries.len(), 2);
        assert_eq!(states[0].entries[0].kind, InfoEventKind::Sent);
        assert_eq!(states[0].entries[1].kind, InfoEventKind::Received);
        assert_eq!(states[1].entries.len(), 2);
        assert_eq!(states[1].input, Symbol(1));
        assert_eq!(states[0].total_bits(), 3);
    }

    #[test]
    fn identical_histories_compare_equal() {
        let mut t1 = Trace::default();
        t1.push(ev(0, EventKind::Send, 0, "11"));
        let mut t2 = Trace::default();
        t2.push(ev(17, EventKind::Send, 0, "11")); // different seq, same history
        let s1 = t1.info_states(&[Symbol(0)]);
        let s2 = t2.info_states(&[Symbol(0)]);
        assert_eq!(s1, s2, "info states ignore global sequence numbers");
    }

    #[test]
    fn different_inputs_distinguish_states() {
        let t = Trace::default();
        let states = t.info_states(&[Symbol(0), Symbol(1)]);
        assert_ne!(states[0], states[1]);
    }

    #[test]
    fn events_accessor_preserves_order() {
        let mut t = Trace::default();
        t.push(ev(0, EventKind::Send, 0, "1"));
        t.push(ev(1, EventKind::Deliver, 1, "1"));
        assert_eq!(t.events().len(), 2);
        assert!(t.events()[0].seq < t.events()[1].seq);
    }
}
