//! Execution traces and information states.
//!
//! Theorem 4's lower-bound argument runs on **information states**: the
//! initial letter of a processor together with the ordered sequence of
//! messages (with directions) it sent or received. The trace machinery
//! here records executions precisely enough to extract those states, which
//! the `infostate` experiment (E3) uses to verify the paper's
//! cut-and-splice lemma exhaustively at small `n`.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use ringleader_automata::Symbol;
use ringleader_bitio::BitString;

use crate::Direction;

/// What happened in a single trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// A processor handed a message to a link.
    Send,
    /// A link handed a message to a processor.
    Deliver,
}

/// One send or delivery, in global order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Global sequence number (sends and deliveries share one clock).
    pub seq: u64,
    /// The kind of event.
    pub kind: EventKind,
    /// 0-based position of the processor acting (sender or receiver).
    pub position: usize,
    /// Direction of travel of the message.
    pub direction: Direction,
    /// The message bits.
    pub payload: BitString,
}

/// A full record of one execution.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    pub(crate) fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// All events in global order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Extracts the per-processor [`InfoState`]s of this execution.
    ///
    /// `inputs[i]` must be the letter processor `i` held.
    ///
    /// # Panics
    ///
    /// Panics if an event references a position `>= inputs.len()`.
    #[must_use]
    pub fn info_states(&self, inputs: &[Symbol]) -> Vec<InfoState> {
        let mut states: Vec<InfoState> =
            inputs.iter().map(|&input| InfoState { input, entries: Vec::new() }).collect();
        for e in &self.events {
            let kind = match e.kind {
                EventKind::Send => InfoEventKind::Sent,
                EventKind::Deliver => InfoEventKind::Received,
            };
            states[e.position].entries.push(InfoStateEntry {
                kind,
                direction: e.direction,
                payload: e.payload.clone(),
            });
        }
        states
    }
}

/// How many closed [`IntervalStats`] windows a [`TraceRing`] retains.
const INTERVAL_HISTORY: usize = 64;

/// Aggregate statistics over one window of trace events.
///
/// A [`TraceRing`] closes a window every `capacity` events, so at
/// `massive` scale these are the only whole-run observability record:
/// the raw events themselves are long gone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntervalStats {
    /// Sequence number of the first event in the window.
    pub first_seq: u64,
    /// Sequence number of the last event in the window.
    pub last_seq: u64,
    /// Events in the window.
    pub events: u64,
    /// How many of them were sends.
    pub sends: u64,
    /// How many of them were deliveries.
    pub deliveries: u64,
    /// Total payload bits across the window's events.
    pub bits: u64,
}

/// A bounded trace: the last `capacity` events plus streamed per-interval
/// statistics, replacing the unbounded [`Trace`] vector at `large` and
/// `massive` scales where O(events) memory is untenable.
///
/// The ring keeps exactly the most recent `capacity` events (older ones
/// are dropped and counted in [`dropped`](TraceRing::dropped)), answers
/// [`tail`](TraceRing::tail)/[`since`](TraceRing::since) queries over that
/// window, and closes an [`IntervalStats`] record every `capacity` events
/// so long runs still stream coarse-grained progress. Memory is
/// O(capacity), independent of run length.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRing {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
    current: IntervalStats,
    intervals: VecDeque<IntervalStats>,
}

impl TraceRing {
    /// Creates a ring retaining the last `capacity` events (at least 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            events: VecDeque::with_capacity(capacity),
            dropped: 0,
            current: IntervalStats::default(),
            intervals: VecDeque::new(),
        }
    }

    pub(crate) fn push(&mut self, event: TraceEvent) {
        if self.current.events == 0 {
            self.current.first_seq = event.seq;
        }
        self.current.last_seq = event.seq;
        self.current.events += 1;
        match event.kind {
            EventKind::Send => self.current.sends += 1,
            EventKind::Deliver => self.current.deliveries += 1,
        }
        self.current.bits += event.payload.len() as u64;
        if self.current.events == self.capacity as u64 {
            if self.intervals.len() == INTERVAL_HISTORY {
                self.intervals.pop_front();
            }
            self.intervals.push_back(std::mem::take(&mut self.current));
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// The last `limit` retained events, oldest first.
    #[must_use]
    pub fn tail(&self, limit: usize) -> Vec<&TraceEvent> {
        let skip = self.events.len().saturating_sub(limit);
        self.events.iter().skip(skip).collect()
    }

    /// Retained events with a sequence number strictly greater than `seq`
    /// (pass the last seq you saw to get what happened since), oldest
    /// first. Events older than the ring's window are gone; check
    /// [`dropped`](TraceRing::dropped) to detect gaps.
    #[must_use]
    pub fn since(&self, seq: u64) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| e.seq > seq).collect()
    }

    /// Number of currently retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The configured retention capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many events have been evicted from the ring so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Closed per-interval statistics windows, oldest first (bounded to
    /// the most recent windows), followed by the still-open window if it
    /// has any events.
    #[must_use]
    pub fn intervals(&self) -> Vec<IntervalStats> {
        let mut out: Vec<IntervalStats> = self.intervals.iter().copied().collect();
        if self.current.events > 0 {
            out.push(self.current);
        }
        out
    }
}

/// Where the engines record trace events: an unbounded [`Trace`], a
/// bounded [`TraceRing`], both, or neither.
///
/// Sequence-number consumption is keyed on [`active`](TraceSink::active):
/// a delivery consumes a seq exactly when *some* sink records it, so a
/// ring-traced run numbers events identically to a fully-traced one.
#[derive(Debug, Default)]
pub(crate) struct TraceSink {
    pub(crate) trace: Option<Trace>,
    pub(crate) ring: Option<TraceRing>,
}

impl TraceSink {
    pub(crate) fn new(record_trace: bool, ring_capacity: Option<usize>) -> Self {
        Self { trace: record_trace.then(Trace::default), ring: ring_capacity.map(TraceRing::new) }
    }

    pub(crate) fn active(&self) -> bool {
        self.trace.is_some() || self.ring.is_some()
    }

    pub(crate) fn push(&mut self, event: TraceEvent) {
        match (&mut self.trace, &mut self.ring) {
            (Some(t), Some(r)) => {
                t.push(event.clone());
                r.push(event);
            }
            (Some(t), None) => t.push(event),
            (None, Some(r)) => r.push(event),
            (None, None) => {}
        }
    }
}

/// Whether an information-state entry was a send or a receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InfoEventKind {
    /// The processor sent the message.
    Sent,
    /// The processor received the message.
    Received,
}

/// One entry of an information state: a message the processor sent or
/// received, with its direction of travel.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InfoStateEntry {
    /// Send or receive.
    pub kind: InfoEventKind,
    /// Direction the message travelled.
    pub direction: Direction,
    /// The message bits.
    pub payload: BitString,
}

/// The paper's information state of a processor after an execution: its
/// input letter plus the ordered sends/receives it participated in.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InfoState {
    /// The processor's input letter.
    pub input: Symbol,
    /// Ordered message history.
    pub entries: Vec<InfoStateEntry>,
}

impl InfoState {
    /// Total bits across all entries — a size proxy used when estimating
    /// how many bits are needed to tell `⌈n/2⌉` distinct states apart.
    #[must_use]
    pub fn total_bits(&self) -> usize {
        self.entries.iter().map(|e| e.payload.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, kind: EventKind, position: usize, payload: &str) -> TraceEvent {
        TraceEvent {
            seq,
            kind,
            position,
            direction: Direction::Clockwise,
            payload: BitString::parse(payload).unwrap(),
        }
    }

    #[test]
    fn info_states_partition_events_by_position() {
        let mut t = Trace::default();
        t.push(ev(0, EventKind::Send, 0, "1"));
        t.push(ev(1, EventKind::Deliver, 1, "1"));
        t.push(ev(2, EventKind::Send, 1, "01"));
        t.push(ev(3, EventKind::Deliver, 0, "01"));
        let states = t.info_states(&[Symbol(0), Symbol(1)]);
        assert_eq!(states.len(), 2);
        assert_eq!(states[0].entries.len(), 2);
        assert_eq!(states[0].entries[0].kind, InfoEventKind::Sent);
        assert_eq!(states[0].entries[1].kind, InfoEventKind::Received);
        assert_eq!(states[1].entries.len(), 2);
        assert_eq!(states[1].input, Symbol(1));
        assert_eq!(states[0].total_bits(), 3);
    }

    #[test]
    fn identical_histories_compare_equal() {
        let mut t1 = Trace::default();
        t1.push(ev(0, EventKind::Send, 0, "11"));
        let mut t2 = Trace::default();
        t2.push(ev(17, EventKind::Send, 0, "11")); // different seq, same history
        let s1 = t1.info_states(&[Symbol(0)]);
        let s2 = t2.info_states(&[Symbol(0)]);
        assert_eq!(s1, s2, "info states ignore global sequence numbers");
    }

    #[test]
    fn different_inputs_distinguish_states() {
        let t = Trace::default();
        let states = t.info_states(&[Symbol(0), Symbol(1)]);
        assert_ne!(states[0], states[1]);
    }

    #[test]
    fn events_accessor_preserves_order() {
        let mut t = Trace::default();
        t.push(ev(0, EventKind::Send, 0, "1"));
        t.push(ev(1, EventKind::Deliver, 1, "1"));
        assert_eq!(t.events().len(), 2);
        assert!(t.events()[0].seq < t.events()[1].seq);
    }

    #[test]
    fn ring_keeps_only_the_tail() {
        let mut ring = TraceRing::new(3);
        for seq in 0..10 {
            ring.push(ev(seq, EventKind::Send, 0, "1"));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.capacity(), 3);
        assert_eq!(ring.dropped(), 7);
        let seqs: Vec<u64> = ring.tail(10).iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
        let seqs: Vec<u64> = ring.tail(2).iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![8, 9]);
    }

    #[test]
    fn ring_since_is_strictly_after() {
        let mut ring = TraceRing::new(8);
        for seq in 0..5 {
            ring.push(ev(seq, EventKind::Deliver, 1, "01"));
        }
        let seqs: Vec<u64> = ring.since(2).iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
        assert!(ring.since(4).is_empty());
    }

    #[test]
    fn ring_streams_interval_stats() {
        let mut ring = TraceRing::new(4);
        for seq in 0..10 {
            let kind = if seq % 2 == 0 { EventKind::Send } else { EventKind::Deliver };
            ring.push(ev(seq, kind, 0, "101"));
        }
        let intervals = ring.intervals();
        // Two closed windows of 4 plus the open window of 2.
        assert_eq!(intervals.len(), 3);
        assert_eq!(intervals[0].first_seq, 0);
        assert_eq!(intervals[0].last_seq, 3);
        assert_eq!(intervals[0].events, 4);
        assert_eq!(intervals[0].sends, 2);
        assert_eq!(intervals[0].deliveries, 2);
        assert_eq!(intervals[0].bits, 12);
        assert_eq!(intervals[1].first_seq, 4);
        assert_eq!(intervals[2].events, 2);
        assert_eq!(intervals[2].first_seq, 8);
    }

    #[test]
    fn ring_interval_history_is_bounded() {
        let mut ring = TraceRing::new(1);
        for seq in 0..200 {
            ring.push(ev(seq, EventKind::Send, 0, "1"));
        }
        // Every event closes a window at capacity 1; retention is bounded.
        assert_eq!(ring.intervals().len(), 64);
        assert_eq!(ring.intervals()[63].last_seq, 199);
    }

    #[test]
    fn ring_capacity_is_at_least_one() {
        let mut ring = TraceRing::new(0);
        ring.push(ev(0, EventKind::Send, 0, "1"));
        assert_eq!(ring.capacity(), 1);
        assert_eq!(ring.len(), 1);
        assert!(!ring.is_empty());
    }

    #[test]
    fn ring_roundtrips_through_serde() {
        let mut ring = TraceRing::new(2);
        for seq in 0..5 {
            ring.push(ev(seq, EventKind::Deliver, 2, "11"));
        }
        let content = serde::Serialize::to_content(&ring);
        let back: TraceRing = serde::Deserialize::from_content(&content).unwrap();
        assert_eq!(ring, back);
    }
}
