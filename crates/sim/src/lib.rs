//! Asynchronous ring simulator with exact bit accounting.
//!
//! This crate is the "hardware" of the Mansour & Zaks reproduction: a
//! distributed, asynchronous, message-driven ring of processors with a
//! distinguished **leader**, exactly as §2 of the paper defines it:
//!
//! * Each processor holds one letter of the input word; the leader holds
//!   the first letter and initiates the algorithm.
//! * All non-leader processors run the *same* algorithm (enforced here by
//!   constructing every follower from one factory).
//! * Messages have arbitrary finite delays: a pluggable [`Scheduler`]
//!   chooses which in-flight message is delivered next (links stay FIFO).
//! * The ring size `n` is unknown to every processor — unless the
//!   experiment opts into the paper's Note 7.4 "known `n`" mode.
//! * Execution ends when the leader [`decide`](Context::decide)s; the
//!   total number of message bits sent up to that point is the execution's
//!   bit complexity.
//!
//! Three topologies are supported: the unidirectional ring (§3–4), the
//! bidirectional ring (§5–6), and the open line used in Stage 1 of the
//! Theorem 7 construction.
//!
//! # Execution engines
//!
//! One model, three engines — each a different point on the
//! fidelity/throughput plane, all constrained to agree:
//!
//! * **Serial event loop** (the [`RingRunner`] default): one thread pops
//!   the scheduler's next in-flight message, delivers it, routes the
//!   sends. Every observable — decision, [`ExecStats`], [`Trace`] — is
//!   defined by this engine; it is the *oracle* the others are tested
//!   against, exactly like the naive scheduler that survives as the
//!   oracle for the incremental link index.
//! * **Sharded engine** ([`RingRunner::shards`]): the ring is split into
//!   contiguous arcs, each owned by a pool worker that runs the event
//!   loop over its arc; boundary links hand messages off through
//!   channels, and a coordinator merges per-shard reports in the serial
//!   scheduler's exact pick order. Whenever every in-flight message
//!   targets one arc, the coordinator grants that shard an *epoch* — a
//!   replica of the scheduler state good for a whole batch of
//!   consecutive picks, executed shard-side and merged from one report
//!   (replayed pick-by-pick when tracing, folded as O(touched)
//!   aggregate counters when not) — and falls back to per-round
//!   delivery commands (whole in-flight
//!   windows for FIFO, one pick for LongestQueue/Random) only while
//!   in-flight traffic genuinely spans arcs. The output is
//!   **byte-identical to the serial engine for every shard count and
//!   scheduling policy** — pinned trace-by-trace in
//!   `tests/shard_equiv.rs` (which also pins epoch-batched ≡ one-pick
//!   merging and the coordination budget: under one coordinator channel
//!   message per delivery on a FIFO one-pass) and at scale in the soak
//!   tier — so sharding is purely a wall-clock/capacity decision.
//! * **Threaded runner** ([`ThreadedRunner`]): one OS thread per
//!   processor with real blocking channels — the most literal reading of
//!   the asynchronous model, used to cross-check that the event-driven
//!   engines didn't bake in a scheduling assumption.
//!
//! # Crash safety & faults
//!
//! Massive runs checkpoint, crash, and resume; faults are injected from
//! a first-class plan rather than ad-hoc test adapters.
//!
//! * **Snapshot points.** [`RingRunner::run_until`] pauses at a delivery
//!   boundary and captures an [`EngineSnapshot`] — process state (via
//!   [`Process::save_state`], an explicit protocol opt-in), every link
//!   queue with its sequence numbers, the scheduler RNG, stats, trace or
//!   trace ring, and the seq/delivery clocks. [`RingRunner::resume`]
//!   rebuilds the engine and finishes the run **byte-identically** —
//!   trace, stats, and exact error positions — to an uninterrupted run.
//!   Snapshots are engine-agnostic: capture serially, resume sharded, or
//!   vice versa.
//! * **Sharded quiesce.** The sharded engine checkpoints at coordinator
//!   round/epoch boundaries: the coordinator stops granting work at the
//!   first boundary at or after the requested event index (epoch grants
//!   are clipped to the pause point, so an epoch never overshoots it),
//!   asks each worker to drain its in-bound boundary channels and
//!   serialize its arc (processes + queue payloads), and zips the
//!   payloads with its own payload-free link replica's sequence numbers.
//!   The pause point may land a few deliveries after the serial
//!   engine's (a round is atomic), but the resumed run's observables
//!   are identical.
//! * **Threaded restore.** The threaded runner *resumes* snapshots
//!   ([`ThreadedRunner::resume`] preloads the channels and skips the
//!   leader start) but cannot *capture* them: with one OS thread per
//!   processor there is no well-defined "event k" to quiesce at, so
//!   capture requests fail with [`SimError::Snapshot`].
//! * **Fault plans.** A [`FaultPlan`] ([`RingRunner::fault_plan`]) is a
//!   deterministic schedule of injections keyed on (position,
//!   per-position delivery count): corrupt/stall/inject-send/
//!   inject-decide/kill-shard/delay. Every [`SimError`] variant is
//!   reachable on demand — see the `faults` module docs. Plans are not
//!   serialized into snapshots; the caller re-supplies them on resume
//!   and the snapshot's per-position delivery counters keep triggers
//!   aligned.
//! * **Bounded traces.** [`RingRunner::trace_ring`] records the last
//!   `capacity` events in a [`TraceRing`] with streamed per-interval
//!   stats ([`IntervalStats`]) — O(capacity) memory at any run length,
//!   the observability story for `massive` scales where a full [`Trace`]
//!   is untenable.
//!
//! # Observability
//!
//! Every engine records into a shared metrics registry when the caller
//! attaches one via [`RingRunner::metrics`] (or
//! [`ThreadedRunner::metrics`]): a `ringleader_obs::Metrics` handle of
//! named counters, max-gauges, log2-bucketed histograms, opaque timers,
//! and per-shard busy/idle/blocked phase timelines. The default handle
//! is disabled and costs nothing — every record call is an inlined
//! no-op on a `None`.
//!
//! * **Engine counters** flush *once*, at the run's `Done` boundary,
//!   from totals the run already computed (`engine.deliveries`,
//!   `engine.scheduler_picks`, `engine.messages`, `engine.bits_sent`,
//!   the `engine.max_message_bits` / `engine.bit_rounds` gauges,
//!   `trace.ring_drops`) — zero hot-loop cost.
//! * **Shard telemetry** records at coordinator-round granularity:
//!   `shard.channel_ops` (the PR 9 coordination budget, now a registry
//!   counter), `shard.epoch_grants` / `shard.handoff_pregrants` /
//!   `shard.epochs_aggregate` / `shard.epochs_traced` /
//!   `shard.window_rounds`, the `shard.epoch_len` histogram, and each
//!   worker's busy/idle/blocked wall-time split — the data that answers
//!   ROADMAP item 1's multi-core question.
//! * **Checkpoint timers** (`checkpoint.capture` / `checkpoint.restore`)
//!   wrap the snapshot cycle on both engines.
//!
//! The load-bearing contract: **metrics read state, they never feed
//! it**. Monotonic wall time lives only inside `ringleader_obs` (the
//! detlint `wallclock-in-sim` carve-out is granted to that one crate by
//! its `Policy:` header); sim code holds opaque [`ringleader_obs::Timer`]
//! handles and never sees a time value, and detlint's `obs-boundary`
//! rule bans reading metric values back in result-affecting crates. A
//! metrics-enabled run is therefore **byte-identical** — outcome,
//! stats, trace, error positions — to the same run with metrics
//! disabled, across engines × schedulers × shard counts × kill/resume
//! cycles, pinned by `tests/metrics_equiv.rs`.
//!
//! # Examples
//!
//! A one-message protocol: the leader asks its clockwise neighbour to echo
//! one bit, then accepts.
//!
//! ```rust
//! use ringleader_bitio::BitString;
//! use ringleader_sim::{
//!     Context, Direction, Process, ProcessResult, Protocol, RingRunner, Topology,
//! };
//! use ringleader_automata::{Alphabet, Symbol, Word};
//!
//! struct Ping;
//! struct Echo;
//!
//! impl Process for Ping {
//!     fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
//!         ctx.send(Direction::Clockwise, BitString::parse("1").unwrap());
//!         Ok(())
//!     }
//!     fn on_message(&mut self, _dir: Direction, _msg: &BitString, ctx: &mut Context) -> ProcessResult {
//!         ctx.decide(true);
//!         Ok(())
//!     }
//! }
//! impl Process for Echo {
//!     fn on_message(&mut self, dir: Direction, msg: &BitString, ctx: &mut Context) -> ProcessResult {
//!         ctx.send(dir, msg.clone()); // forward onward around the ring
//!         Ok(())
//!     }
//! }
//!
//! struct PingProtocol;
//! impl Protocol for PingProtocol {
//!     fn name(&self) -> &'static str { "ping" }
//!     fn topology(&self) -> Topology { Topology::Unidirectional }
//!     fn leader(&self, _input: Symbol) -> Box<dyn Process> { Box::new(Ping) }
//!     fn follower(&self, _input: Symbol) -> Box<dyn Process> { Box::new(Echo) }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sigma = Alphabet::binary();
//! let word = Word::from_str("0000", &sigma)?; // ring of 4
//! let outcome = RingRunner::new().run(&PingProtocol, &word)?;
//! assert_eq!(outcome.decision, Some(true));
//! assert_eq!(outcome.stats.total_bits, 4); // one bit per hop
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod context;
mod engine;
mod error;
mod faults;
pub mod pool;
mod sched;
mod shard;
mod stats;
mod threaded;
mod token;
mod trace;

pub use checkpoint::{EngineSnapshot, RunPhase, SNAPSHOT_VERSION};
pub use context::{Context, Process, ProcessError, ProcessResult, Protocol};
pub use engine::{Outcome, RingRunner};
pub use error::SimError;
#[doc(hidden)]
pub use faults::testkit as fault_testkit;
pub use faults::{Corruption, Fault, FaultAction, FaultPlan};
pub use sched::Scheduler;
#[doc(hidden)]
pub use sched::{testkit as sched_testkit, LinkIndex};
pub use stats::ExecStats;
pub use threaded::ThreadedRunner;
pub use token::{token_violations, validate_token_discipline};
pub use trace::{
    EventKind, InfoState, InfoStateEntry, IntervalStats, Trace, TraceEvent, TraceRing,
};

use serde::{Deserialize, Serialize};

/// Direction a message travels around the ring.
///
/// `Clockwise` is the direction of the unidirectional model: from `pᵢ` to
/// `pᵢ₊₁`, with the leader as `p₁`. A processor that receives a message
/// travelling `d` and wants to forward it onward sends it with the same
/// `d`; replying back uses [`Direction::opposite`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Towards the next processor (`pᵢ → pᵢ₊₁`).
    Clockwise,
    /// Towards the previous processor (`pᵢ → pᵢ₋₁`).
    CounterClockwise,
}

impl Direction {
    /// The other direction.
    #[must_use]
    pub fn opposite(self) -> Direction {
        match self {
            Direction::Clockwise => Direction::CounterClockwise,
            Direction::CounterClockwise => Direction::Clockwise,
        }
    }
}

/// The communication graph a protocol runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Topology {
    /// Ring where messages may only travel clockwise (paper §3–4).
    Unidirectional,
    /// Ring where both directions are allowed (paper §5–6).
    Bidirectional,
    /// Open line `p₁ … pₙ`: the bidirectional ring with the `pₙ ↔ p₁`
    /// link removed (Stage 1 of Theorem 7).
    Line,
}

impl Topology {
    /// Whether this topology admits a message from `position` (0-based,
    /// leader = 0) in `direction` on a ring/line of `n` processors.
    #[must_use]
    pub fn allows(self, position: usize, direction: Direction, n: usize) -> bool {
        match self {
            Topology::Unidirectional => direction == Direction::Clockwise,
            Topology::Bidirectional => true,
            Topology::Line => match direction {
                // The missing link is between p_n (index n-1) and p_1 (index 0).
                Direction::Clockwise => position != n - 1,
                Direction::CounterClockwise => position != 0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_is_involutive() {
        assert_eq!(Direction::Clockwise.opposite(), Direction::CounterClockwise);
        assert_eq!(Direction::Clockwise.opposite().opposite(), Direction::Clockwise);
    }

    #[test]
    fn unidirectional_allows_only_clockwise() {
        for pos in 0..4 {
            assert!(Topology::Unidirectional.allows(pos, Direction::Clockwise, 4));
            assert!(!Topology::Unidirectional.allows(pos, Direction::CounterClockwise, 4));
        }
    }

    #[test]
    fn bidirectional_allows_everything() {
        for pos in 0..4 {
            assert!(Topology::Bidirectional.allows(pos, Direction::Clockwise, 4));
            assert!(Topology::Bidirectional.allows(pos, Direction::CounterClockwise, 4));
        }
    }

    #[test]
    fn line_cuts_the_wraparound_link() {
        let n = 5;
        assert!(!Topology::Line.allows(n - 1, Direction::Clockwise, n));
        assert!(!Topology::Line.allows(0, Direction::CounterClockwise, n));
        for pos in 0..n - 1 {
            assert!(Topology::Line.allows(pos, Direction::Clockwise, n));
        }
        for pos in 1..n {
            assert!(Topology::Line.allows(pos, Direction::CounterClockwise, n));
        }
    }
}
