//! Real-concurrency backend on OS threads and crossbeam channels.
//!
//! The discrete-event engine *models* asynchrony; this backend *is*
//! asynchronous: one OS thread per processor, unbounded crossbeam channels
//! as links, and whatever interleaving the OS scheduler produces. For the
//! deterministic protocols of the paper the bit totals must agree exactly
//! with the event engine — experiment E12 checks that, closing the gap
//! between "simulated" and "actually concurrent" executions.
//!
//! This is the opposite trade from the sharded engine (`crate::shard`):
//! that one buys throughput at large `n` while staying byte-identical to
//! the serial schedule; this one surrenders the schedule to the OS on
//! purpose, as evidence the measured bit counts never depended on it.
//!
//! The backend piggybacks a control signal on the data channels: when the
//! leader decides, a `Halt` envelope is flooded clockwise so every thread
//! shuts down. Control envelopes carry no protocol bits and are excluded
//! from the accounting.
//!
//! Threads park on a real blocking `select!` over their two data links
//! and a shutdown channel — no polling. Shutdown is broadcast by
//! *disconnecting* the shutdown channel (dropping its only sender, held
//! in a shared slot): every parked worker observes the disconnect at
//! once, which a single in-band message could not do. The watchdog
//! deadline lives in exactly one place — the coordinating thread's
//! `recv_timeout` on the decision channel — so a stuck protocol aborts
//! within one configured timeout, not timeout-plus-slack.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use ringleader_obs::Metrics;

use ringleader_automata::Word;
use ringleader_bitio::BitString;

use crate::checkpoint::EngineSnapshot;
use crate::context::{Context, Process, Protocol};
use crate::{Direction, SimError, Topology};

/// Outcome of a threaded run: the decision plus coarse bit accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadedOutcome {
    /// The leader's decision.
    pub decision: bool,
    /// Total protocol bits sent across all links.
    pub total_bits: usize,
    /// Total protocol messages sent.
    pub message_count: usize,
}

/// What travels over a channel: protocol payloads or the shutdown flood.
enum Envelope {
    Data(Direction, BitString),
    Halt,
}

/// Runs protocols with one OS thread per processor.
///
/// Supports ring topologies (not [`Topology::Line`]) and terminates via a
/// halt flood once the leader decides. A watchdog timeout guards against
/// protocol deadlocks.
///
/// # Examples
///
/// See `tests/` in this module and the E12 experiment; usage mirrors
/// [`RingRunner`](crate::RingRunner) but with wall-clock concurrency.
#[derive(Debug, Clone)]
pub struct ThreadedRunner {
    timeout: Duration,
    known_ring_size: bool,
    metrics: Metrics,
}

impl Default for ThreadedRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl ThreadedRunner {
    /// A runner with a 30-second watchdog and unknown ring size.
    #[must_use]
    pub fn new() -> Self {
        Self {
            timeout: Duration::from_secs(30),
            known_ring_size: false,
            metrics: Metrics::disabled(),
        }
    }

    /// Sets the watchdog timeout after which a stuck run aborts.
    pub fn timeout(&mut self, timeout: Duration) -> &mut Self {
        self.timeout = timeout;
        self
    }

    /// Switches the Note 7.4 known-`n` mode on.
    pub fn known_ring_size(&mut self, on: bool) -> &mut Self {
        self.known_ring_size = on;
        self
    }

    /// Attaches a metrics registry; a successful run flushes
    /// `threaded.bits_sent` and `threaded.messages` into it. The default
    /// disabled handle records nothing.
    pub fn metrics(&mut self, metrics: Metrics) -> &mut Self {
        self.metrics = metrics;
        self
    }

    /// Executes `protocol` on a ring of real threads labelled with `word`.
    ///
    /// # Errors
    ///
    /// * [`SimError::EmptyRing`] for an empty word.
    /// * [`SimError::IllegalSend`] / [`SimError::FollowerDecided`] /
    ///   [`SimError::Process`] on protocol bugs.
    /// * [`SimError::Stalled`] if the watchdog fires before a decision.
    pub fn run(&self, protocol: &dyn Protocol, word: &Word) -> Result<ThreadedOutcome, SimError> {
        self.launch(protocol, word, None)
    }

    /// Resumes an [`EngineSnapshot`] captured by the event engines on
    /// real threads: processes are restored via
    /// [`Process::load_state`](crate::Process::load_state), the
    /// snapshot's in-flight messages are preloaded onto the channels,
    /// the bit/message counters continue from the snapshot's totals, and
    /// the leader start is skipped. The observables (decision,
    /// `total_bits`, `message_count`) match an uninterrupted run.
    ///
    /// The converse — *capturing* a snapshot from a threaded run — is
    /// unsupported: with one OS thread per processor there is no
    /// well-defined "event k" to quiesce at.
    ///
    /// # Errors
    ///
    /// Everything [`ThreadedRunner::run`] can raise, plus
    /// [`SimError::Snapshot`] for an incompatible snapshot and
    /// [`SimError::Process`] if a process rejects its saved state.
    pub fn resume(
        &self,
        protocol: &dyn Protocol,
        word: &Word,
        snapshot: &EngineSnapshot,
    ) -> Result<ThreadedOutcome, SimError> {
        self.launch(protocol, word, Some(snapshot))
    }

    fn launch(
        &self,
        protocol: &dyn Protocol,
        word: &Word,
        resume: Option<&EngineSnapshot>,
    ) -> Result<ThreadedOutcome, SimError> {
        let n = word.len();
        if n == 0 {
            return Err(SimError::EmptyRing);
        }
        if let Some(snap) = resume {
            snap.validate(n)?;
        }
        let topology = protocol.topology();

        // Channels: cw[i] feeds processor (i+1) % n from processor i;
        // ccw[i] feeds processor i from processor (i+1) % n.
        let mut cw_tx = Vec::with_capacity(n);
        let mut cw_rx = Vec::with_capacity(n);
        let mut ccw_tx = Vec::with_capacity(n);
        let mut ccw_rx = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<Envelope>();
            cw_tx.push(tx);
            cw_rx.push(rx);
            let (tx, rx) = unbounded::<Envelope>();
            ccw_tx.push(tx);
            ccw_rx.push(rx);
        }

        // Preload the snapshot's in-flight messages in queue order:
        // clockwise link `l` is channel `cw[l]`, counter-clockwise link
        // `n + i` feeds processor `i` on `ccw[i]`. Continue the counters
        // from the snapshot so the final totals cover the whole run.
        if let Some(snap) = resume {
            for (l, queue) in snap.links.iter().take(n).enumerate() {
                for (_, payload) in queue {
                    let _ = cw_tx[l].send(Envelope::Data(Direction::Clockwise, payload.clone()));
                }
            }
            for (i, queue) in snap.links.iter().skip(n).enumerate() {
                for (_, payload) in queue {
                    let _ = ccw_tx[i]
                        .send(Envelope::Data(Direction::CounterClockwise, payload.clone()));
                }
            }
        }

        let resumed_stats = resume.map(|s| &s.stats);
        let total_bits = Arc::new(AtomicUsize::new(resumed_stats.map_or(0, |s| s.total_bits)));
        let message_count =
            Arc::new(AtomicUsize::new(resumed_stats.map_or(0, |s| s.message_count)));
        let failure: Arc<Mutex<Option<SimError>>> = Arc::new(Mutex::new(None));
        let (decision_tx, decision_rx) = unbounded::<bool>();

        // Shutdown broadcast: the channel's single sender lives in this
        // shared slot; clearing the slot disconnects the channel, waking
        // every worker parked on it. Workers hold the slot (not a sender
        // clone) so a failing worker can broadcast too.
        let (shutdown_tx, shutdown_rx) = unbounded::<()>();
        let shutdown: Arc<Mutex<Option<Sender<()>>>> = Arc::new(Mutex::new(Some(shutdown_tx)));

        let known = resume.map_or(self.known_ring_size, |s| s.known_ring_size).then_some(n);
        let mut handles = Vec::with_capacity(n);
        for i in 0..n {
            let mut process = if i == 0 {
                protocol.leader(word.get(0).expect("non-empty word"))
            } else {
                protocol.follower(word.get(i).expect("index < n"))
            };
            if let Some(snap) = resume {
                process
                    .load_state(&snap.processes[i])
                    .map_err(|source| SimError::Process { position: i, source })?;
            }
            let worker = Worker {
                position: i,
                start_leader: resume.is_none(),
                n,
                topology,
                known,
                process,
                // Processor i receives clockwise traffic on cw[(i-1+n)%n]
                // and counter-clockwise traffic on ccw[i].
                from_ccw_neighbor: cw_rx[(i + n - 1) % n].clone(),
                from_cw_neighbor: ccw_rx[i].clone(),
                to_cw_neighbor: cw_tx[i].clone(),
                to_ccw_neighbor: ccw_tx[(i + n - 1) % n].clone(),
                total_bits: Arc::clone(&total_bits),
                message_count: Arc::clone(&message_count),
                failure: Arc::clone(&failure),
                decision_tx: decision_tx.clone(),
                shutdown_rx: shutdown_rx.clone(),
                shutdown: Arc::clone(&shutdown),
            };
            handles.push(thread::spawn(move || worker.run()));
        }
        drop(decision_tx);

        // The watchdog's single source of truth: if no decision (and no
        // abort — workers that fail drop their decision senders, which
        // disconnects this channel promptly) arrives within the timeout,
        // the run is declared stuck.
        let decision = decision_rx.recv_timeout(self.timeout);
        if decision.is_err() {
            // Stall or abort: broadcast shutdown so parked workers exit.
            // On a clean decision the coordinator must NOT broadcast —
            // the halt flood retires every worker in FIFO order behind
            // the data still on its link, whereas the out-of-band
            // disconnect could win the select against deliverable
            // envelopes and make the bit totals timing-dependent. (A
            // worker that fails mid-flood broadcasts for itself, so the
            // flood cannot strand anyone on this path.)
            shutdown.lock().take();
        }
        for h in handles {
            let _ = h.join();
        }
        if let Some(err) = failure.lock().take() {
            return Err(err);
        }
        match decision {
            Ok(d) => {
                let outcome = ThreadedOutcome {
                    decision: d,
                    total_bits: total_bits.load(Ordering::SeqCst),
                    message_count: message_count.load(Ordering::SeqCst),
                };
                self.metrics.counter_add("threaded.bits_sent", outcome.total_bits as u64);
                self.metrics.counter_add("threaded.messages", outcome.message_count as u64);
                Ok(outcome)
            }
            Err(_) => Err(SimError::Stalled { deliveries: message_count.load(Ordering::SeqCst) }),
        }
    }
}

struct Worker {
    position: usize,
    /// Run the leader's `on_start` — false when resuming a snapshot
    /// (the interrupted run already started it).
    start_leader: bool,
    n: usize,
    topology: Topology,
    known: Option<usize>,
    process: Box<dyn Process>,
    from_ccw_neighbor: Receiver<Envelope>,
    from_cw_neighbor: Receiver<Envelope>,
    to_cw_neighbor: Sender<Envelope>,
    to_ccw_neighbor: Sender<Envelope>,
    total_bits: Arc<AtomicUsize>,
    message_count: Arc<AtomicUsize>,
    failure: Arc<Mutex<Option<SimError>>>,
    decision_tx: Sender<bool>,
    shutdown_rx: Receiver<()>,
    shutdown: Arc<Mutex<Option<Sender<()>>>>,
}

impl Worker {
    fn run(mut self) {
        if self.position == 0 && self.start_leader {
            let mut ctx = Context::new(true, self.known);
            if let Err(source) = self.process.on_start(&mut ctx) {
                self.fail(SimError::Process { position: 0, source });
                return;
            }
            if self.apply(ctx) {
                return;
            }
        }
        loop {
            // Queued protocol traffic takes strict priority over the
            // shutdown broadcast: the select's tie-break rotates among
            // ready channels (starvation-freedom), so without this
            // ordered drain a worker could exit with deliverable
            // envelopes still queued — and the bits their forwarding
            // would have sent become a coin flip. Only a worker whose
            // links are momentarily empty parks on the 3-way select.
            let polled = match self.from_ccw_neighbor.try_recv() {
                Ok(e) => Some((Direction::Clockwise, e)),
                Err(_) => match self.from_cw_neighbor.try_recv() {
                    Ok(e) => Some((Direction::CounterClockwise, e)),
                    Err(_) => None,
                },
            };
            let envelope = if let Some(hit) = polled {
                Ok(hit)
            } else {
                // Park until a neighbour sends or shutdown is broadcast —
                // a real blocking wait, no poll interval, no clock.
                crossbeam::channel::select! {
                    recv(self.from_ccw_neighbor) -> e => e.map(|e| (Direction::Clockwise, e)),
                    recv(self.from_cw_neighbor) -> e => e.map(|e| (Direction::CounterClockwise, e)),
                    recv(self.shutdown_rx) -> _signal => {
                        // Message or disconnect: either way, stop.
                        return;
                    }
                }
            };
            let Ok((direction, envelope)) = envelope else {
                return; // channel closed: peers are shutting down
            };
            match envelope {
                Envelope::Halt => {
                    // Flood onward clockwise until it returns to the leader.
                    if self.position != self.n - 1 {
                        let _ = self.to_cw_neighbor.send(Envelope::Halt);
                    }
                    return;
                }
                Envelope::Data(dir, payload) => {
                    debug_assert_eq!(dir, direction);
                    let mut ctx = Context::new(self.position == 0, self.known);
                    if let Err(source) = self.process.on_message(direction, &payload, &mut ctx) {
                        self.fail(SimError::Process { position: self.position, source });
                        return;
                    }
                    if self.apply(ctx) {
                        return;
                    }
                }
            }
        }
    }

    /// Applies buffered effects; returns `true` if this worker is done.
    fn apply(&mut self, ctx: Context) -> bool {
        let (outbox, decision) = ctx.take();
        if decision.is_some() && self.position != 0 {
            self.fail(SimError::FollowerDecided { position: self.position });
            return true;
        }
        for (direction, payload) in outbox {
            if !self.topology.allows(self.position, direction, self.n) {
                self.fail(SimError::IllegalSend { position: self.position, direction });
                return true;
            }
            self.total_bits.fetch_add(payload.len(), Ordering::SeqCst);
            self.message_count.fetch_add(1, Ordering::SeqCst);
            let target = match direction {
                Direction::Clockwise => &self.to_cw_neighbor,
                Direction::CounterClockwise => &self.to_ccw_neighbor,
            };
            let _ = target.send(Envelope::Data(direction, payload));
        }
        if let Some(d) = decision {
            let _ = self.decision_tx.send(d);
            // Start the halt flood (skip for n = 1, nobody else to stop).
            if self.n > 1 {
                let _ = self.to_cw_neighbor.send(Envelope::Halt);
            }
            return true;
        }
        false
    }

    fn fail(&self, err: SimError) {
        let mut slot = self.failure.lock();
        if slot.is_none() {
            *slot = Some(err);
        }
        drop(slot);
        // Wake every sibling parked on the shutdown channel: clearing the
        // slot drops the only sender, disconnecting the channel.
        self.shutdown.lock().take();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ProcessResult;
    use ringleader_automata::{Alphabet, Symbol};

    struct Forwarder;
    impl Process for Forwarder {
        fn on_message(
            &mut self,
            dir: Direction,
            msg: &BitString,
            ctx: &mut Context,
        ) -> ProcessResult {
            ctx.send(dir, msg.clone());
            Ok(())
        }
    }

    struct RoundTrip;
    impl Protocol for RoundTrip {
        fn name(&self) -> &'static str {
            "round-trip"
        }
        fn topology(&self) -> Topology {
            Topology::Unidirectional
        }
        fn leader(&self, _input: Symbol) -> Box<dyn Process> {
            struct L;
            impl Process for L {
                fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
                    ctx.send(Direction::Clockwise, BitString::parse("10101").unwrap());
                    Ok(())
                }
                fn on_message(
                    &mut self,
                    _d: Direction,
                    _m: &BitString,
                    ctx: &mut Context,
                ) -> ProcessResult {
                    ctx.decide(true);
                    Ok(())
                }
            }
            Box::new(L)
        }
        fn follower(&self, _input: Symbol) -> Box<dyn Process> {
            Box::new(Forwarder)
        }
    }

    fn word(n: usize) -> Word {
        Word::from_str(&"0".repeat(n), &Alphabet::binary()).unwrap()
    }

    #[test]
    fn threaded_round_trip_matches_event_engine() {
        for n in [1usize, 2, 5, 16] {
            let threaded = ThreadedRunner::new().run(&RoundTrip, &word(n)).unwrap();
            let event = crate::RingRunner::new().run(&RoundTrip, &word(n)).unwrap();
            assert!(threaded.decision, "n={n}");
            assert_eq!(threaded.total_bits, event.stats.total_bits, "n={n}");
            assert_eq!(threaded.message_count, event.stats.message_count, "n={n}");
        }
    }

    #[test]
    fn empty_ring_rejected() {
        assert!(matches!(
            ThreadedRunner::new().run(&RoundTrip, &Word::new()),
            Err(SimError::EmptyRing)
        ));
    }

    #[test]
    fn watchdog_catches_stalls() {
        struct Silent;
        impl Protocol for Silent {
            fn name(&self) -> &'static str {
                "silent"
            }
            fn topology(&self) -> Topology {
                Topology::Unidirectional
            }
            fn leader(&self, _input: Symbol) -> Box<dyn Process> {
                struct L;
                impl Process for L {
                    fn on_message(
                        &mut self,
                        _d: Direction,
                        _m: &BitString,
                        _c: &mut Context,
                    ) -> ProcessResult {
                        Ok(())
                    }
                }
                Box::new(L)
            }
            fn follower(&self, _input: Symbol) -> Box<dyn Process> {
                Box::new(Forwarder)
            }
        }
        let mut runner = ThreadedRunner::new();
        runner.timeout(Duration::from_millis(200));
        assert!(matches!(runner.run(&Silent, &word(3)), Err(SimError::Stalled { .. })));
    }

    #[test]
    fn watchdog_deadline_is_single_sourced() {
        // The deadline used to be counted twice: each worker armed its
        // own `timeout` clock *and* the coordinator waited `timeout + 1s`
        // on top, so a stuck run aborted only after roughly double the
        // configured budget. Now the coordinator's `recv_timeout` is the
        // only clock: a stuck protocol must abort within ~1× timeout
        // (plus scheduling slack), not 2× + 1s.
        struct Mute;
        impl Protocol for Mute {
            fn name(&self) -> &'static str {
                "mute"
            }
            fn topology(&self) -> Topology {
                Topology::Unidirectional
            }
            fn leader(&self, _input: Symbol) -> Box<dyn Process> {
                struct L;
                impl Process for L {
                    fn on_message(
                        &mut self,
                        _d: Direction,
                        _m: &BitString,
                        _c: &mut Context,
                    ) -> ProcessResult {
                        Ok(())
                    }
                }
                Box::new(L)
            }
            fn follower(&self, _input: Symbol) -> Box<dyn Process> {
                Box::new(Forwarder)
            }
        }
        let timeout = Duration::from_millis(300);
        let mut runner = ThreadedRunner::new();
        runner.timeout(timeout);
        let start = std::time::Instant::now();
        let err = runner.run(&Mute, &word(4)).unwrap_err();
        let elapsed = start.elapsed();
        assert!(matches!(err, SimError::Stalled { .. }), "{err:?}");
        assert!(elapsed >= timeout, "aborted before the budget: {elapsed:?}");
        // Well under the old 2×timeout + 1s behaviour; generous slack
        // for thread teardown on a loaded single-core runner.
        assert!(elapsed < timeout * 3, "watchdog budget double-counted: {elapsed:?}");
    }

    #[test]
    fn follower_decision_reported() {
        struct Rogue;
        impl Protocol for Rogue {
            fn name(&self) -> &'static str {
                "rogue"
            }
            fn topology(&self) -> Topology {
                Topology::Unidirectional
            }
            fn leader(&self, _input: Symbol) -> Box<dyn Process> {
                struct L;
                impl Process for L {
                    fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
                        ctx.send(Direction::Clockwise, BitString::parse("1").unwrap());
                        Ok(())
                    }
                    fn on_message(
                        &mut self,
                        _d: Direction,
                        _m: &BitString,
                        _c: &mut Context,
                    ) -> ProcessResult {
                        Ok(())
                    }
                }
                Box::new(L)
            }
            fn follower(&self, _input: Symbol) -> Box<dyn Process> {
                struct F;
                impl Process for F {
                    fn on_message(
                        &mut self,
                        _d: Direction,
                        _m: &BitString,
                        ctx: &mut Context,
                    ) -> ProcessResult {
                        ctx.decide(false);
                        Ok(())
                    }
                }
                Box::new(F)
            }
        }
        let mut runner = ThreadedRunner::new();
        runner.timeout(Duration::from_secs(2));
        let err = runner.run(&Rogue, &word(3)).unwrap_err();
        assert!(matches!(err, SimError::FollowerDecided { position: 1 }));
    }
}
