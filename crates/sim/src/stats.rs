//! Bit-complexity accounting.

use serde::{Deserialize, Serialize};

use crate::Direction;

/// Exact accounting of one execution's communication.
///
/// `total_bits` is the paper's `Σᵢ |mᵢ|` over every message *sent* during
/// the execution (messages still in flight when the leader decides have
/// been sent and therefore count). All other fields are derived views used
/// by the experiments: per-link loads locate the minimum-traffic link for
/// the Theorem 5 cut argument, and `max_message_bits` exhibits the
/// `Ω(log n)` message-width growth of Theorem 4.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecStats {
    /// Total bits sent — the execution's bit complexity.
    pub total_bits: usize,
    /// Number of messages sent.
    pub message_count: usize,
    /// Size of the largest single message, in bits.
    pub max_message_bits: usize,
    /// Number of deliveries performed (≤ `message_count`; smaller when the
    /// leader decided with messages still in flight).
    pub deliveries: usize,
    /// Bits sent clockwise over each link: entry `i` is the link
    /// `pᵢ → pᵢ₊₁` (indices mod `n`).
    pub clockwise_link_bits: Vec<usize>,
    /// Bits sent counter-clockwise over each link: entry `i` is the link
    /// `pᵢ₊₁ → pᵢ` (indices mod `n`).
    pub counter_clockwise_link_bits: Vec<usize>,
}

impl ExecStats {
    pub(crate) fn new(n: usize) -> Self {
        Self {
            clockwise_link_bits: vec![0; n],
            counter_clockwise_link_bits: vec![0; n],
            ..Self::default()
        }
    }

    /// Records a send of `bits` bits from `position` in `direction`.
    pub(crate) fn record_send(&mut self, position: usize, direction: Direction, bits: usize) {
        self.total_bits += bits;
        self.message_count += 1;
        self.max_message_bits = self.max_message_bits.max(bits);
        let n = self.clockwise_link_bits.len();
        match direction {
            Direction::Clockwise => self.clockwise_link_bits[position] += bits,
            // p_{i} sending counter-clockwise uses the link between p_{i-1} and p_i.
            Direction::CounterClockwise => {
                self.counter_clockwise_link_bits[(position + n - 1) % n] += bits;
            }
        }
    }

    /// Total bits crossing link `i` (between `pᵢ` and `pᵢ₊₁`), both ways.
    #[must_use]
    pub fn link_bits(&self, link: usize) -> usize {
        self.clockwise_link_bits[link] + self.counter_clockwise_link_bits[link]
    }

    /// Index of the link carrying the fewest bits — the link the Theorem 5
    /// transformation disconnects.
    #[must_use]
    pub fn min_traffic_link(&self) -> usize {
        (0..self.clockwise_link_bits.len()).min_by_key(|&i| self.link_bits(i)).unwrap_or(0)
    }

    /// Mean message size in bits (0 for an execution with no messages).
    #[must_use]
    pub fn mean_message_bits(&self) -> f64 {
        if self.message_count == 0 {
            0.0
        } else {
            self.total_bits as f64 / self.message_count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut s = ExecStats::new(4);
        s.record_send(0, Direction::Clockwise, 3);
        s.record_send(1, Direction::Clockwise, 5);
        s.record_send(0, Direction::CounterClockwise, 2);
        assert_eq!(s.total_bits, 10);
        assert_eq!(s.message_count, 3);
        assert_eq!(s.max_message_bits, 5);
        assert_eq!(s.clockwise_link_bits, vec![3, 5, 0, 0]);
        // p0 sending counter-clockwise crosses the p3↔p0 link (index 3).
        assert_eq!(s.counter_clockwise_link_bits, vec![0, 0, 0, 2]);
    }

    #[test]
    fn link_totals_and_min_link() {
        let mut s = ExecStats::new(3);
        s.record_send(0, Direction::Clockwise, 10); // link 0
        s.record_send(1, Direction::Clockwise, 1); // link 1
        s.record_send(2, Direction::CounterClockwise, 2); // link 1 (p2->p1)
        assert_eq!(s.link_bits(0), 10);
        assert_eq!(s.link_bits(1), 3);
        assert_eq!(s.link_bits(2), 0);
        assert_eq!(s.min_traffic_link(), 2);
    }

    #[test]
    fn mean_message_bits_handles_empty() {
        let s = ExecStats::new(2);
        assert_eq!(s.mean_message_bits(), 0.0);
        let mut s = ExecStats::new(2);
        s.record_send(0, Direction::Clockwise, 4);
        s.record_send(1, Direction::Clockwise, 2);
        assert!((s.mean_message_bits() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_bit_messages_count_as_messages() {
        // A 0-bit message is legal (a pure "signal"); it must bump the
        // message count without affecting bit totals.
        let mut s = ExecStats::new(2);
        s.record_send(0, Direction::Clockwise, 0);
        assert_eq!(s.total_bits, 0);
        assert_eq!(s.message_count, 1);
    }
}
