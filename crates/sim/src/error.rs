//! Simulation errors.

use std::error::Error;
use std::fmt;

use crate::context::ProcessError;
use crate::Direction;

/// An error that aborts a simulation run.
///
/// Every variant indicates either a protocol implementation bug (the
/// paper's model rules them out for correct algorithms) or a configuration
/// problem; none of them occur in the shipped protocols' test suites.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The input word was empty — a ring needs at least one processor.
    EmptyRing,
    /// A processor sent in a direction the topology forbids.
    IllegalSend {
        /// 0-based position of the offending processor (leader = 0).
        position: usize,
        /// The forbidden direction.
        direction: Direction,
    },
    /// A non-leader processor called [`decide`](crate::Context::decide).
    FollowerDecided {
        /// 0-based position of the offending processor.
        position: usize,
    },
    /// All messages were delivered but the leader never decided.
    Stalled {
        /// Number of deliveries that had occurred.
        deliveries: usize,
    },
    /// The configured event budget was exhausted (runaway protocol).
    EventLimitExceeded {
        /// The limit that was hit.
        limit: usize,
    },
    /// A process handler failed.
    Process {
        /// 0-based position of the failing processor.
        position: usize,
        /// The underlying failure.
        source: ProcessError,
    },
    /// A worker of the sharded engine terminated without reporting
    /// (e.g. a panic inside a process handler killed its shard).
    ShardFailed {
        /// Index of the failed shard.
        shard: usize,
    },
    /// A checkpoint could not be captured or restored.
    Snapshot {
        /// What went wrong (unsupported protocol, version mismatch, ...).
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::EmptyRing => write!(f, "ring must have at least one processor"),
            SimError::IllegalSend { position, direction } => {
                write!(f, "processor {position} sent {direction:?}, forbidden by topology")
            }
            SimError::FollowerDecided { position } => {
                write!(f, "follower {position} attempted to decide (only the leader may)")
            }
            SimError::Stalled { deliveries } => {
                write!(
                    f,
                    "no messages in flight after {deliveries} deliveries but leader never decided"
                )
            }
            SimError::EventLimitExceeded { limit } => {
                write!(f, "event limit {limit} exceeded")
            }
            SimError::Process { position, source } => {
                write!(f, "processor {position} failed: {source}")
            }
            SimError::ShardFailed { shard } => {
                write!(f, "shard {shard} of the sharded engine terminated without reporting")
            }
            SimError::Snapshot { reason } => {
                write!(f, "checkpoint failed: {reason}")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Process { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_specific() {
        let e = SimError::IllegalSend { position: 3, direction: Direction::CounterClockwise };
        assert!(e.to_string().contains("processor 3"));
        let e = SimError::Stalled { deliveries: 17 };
        assert!(e.to_string().contains("17"));
        let e = SimError::EventLimitExceeded { limit: 9 };
        assert!(e.to_string().contains('9'));
        let e = SimError::Snapshot { reason: "protocol lacks save_state".into() };
        assert!(e.to_string().contains("lacks save_state"));
    }

    #[test]
    fn process_error_is_source() {
        use std::error::Error as _;
        let e =
            SimError::Process { position: 1, source: ProcessError::InvalidState("boom".into()) };
        assert!(e.source().is_some());
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
