//! Delivery scheduling — the asynchrony adversary.
//!
//! In the asynchronous model every message has an arbitrary finite delay.
//! The engine models this by keeping one FIFO queue per link and letting a
//! `Scheduler` choose, at each step, *which non-empty link* delivers its
//! head message. FIFO-per-link is preserved in every policy (links are
//! channels); the adversary only controls interleaving across links.
//!
//! For unidirectional one-pass protocols the choice is immaterial (at most
//! one message is ever in flight), which experiment E12 verifies; for
//! bidirectional protocols different schedules genuinely reorder the
//! probe collisions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Policy choosing the next link to deliver from.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Scheduler {
    /// Deliver messages in global send order (the "synchronous-looking"
    /// baseline; still a legal asynchronous execution).
    #[default]
    Fifo,
    /// Uniformly random choice among non-empty links, seeded for
    /// reproducibility.
    Random {
        /// RNG seed; equal seeds give equal executions.
        seed: u64,
    },
    /// Always deliver from the non-empty link with the *largest* backlog,
    /// breaking ties by lowest link index. A simple adversarial policy
    /// that maximizes reordering across links.
    LongestQueue,
}

impl Scheduler {
    pub(crate) fn build(&self) -> Box<dyn Chooser> {
        match self {
            Scheduler::Fifo => Box::new(FifoChooser),
            Scheduler::Random { seed } => {
                Box::new(RandomChooser { rng: StdRng::seed_from_u64(*seed) })
            }
            Scheduler::LongestQueue => Box::new(LongestQueueChooser),
        }
    }
}

/// A link's visible state for scheduling decisions.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LinkView {
    /// Dense link id.
    pub id: usize,
    /// Number of queued messages.
    pub backlog: usize,
    /// Global sequence number of the head message (send order).
    pub head_seq: u64,
}

/// Internal strategy object: picks one of the non-empty links.
pub(crate) trait Chooser {
    /// `links` is non-empty and every entry has `backlog > 0`.
    fn choose(&mut self, links: &[LinkView]) -> usize;
}

struct FifoChooser;

impl Chooser for FifoChooser {
    fn choose(&mut self, links: &[LinkView]) -> usize {
        links.iter().min_by_key(|l| l.head_seq).expect("choose() requires at least one link").id
    }
}

struct RandomChooser {
    rng: StdRng,
}

impl Chooser for RandomChooser {
    fn choose(&mut self, links: &[LinkView]) -> usize {
        links[self.rng.gen_range(0..links.len())].id
    }
}

struct LongestQueueChooser;

impl Chooser for LongestQueueChooser {
    fn choose(&mut self, links: &[LinkView]) -> usize {
        links
            .iter()
            .max_by(|a, b| a.backlog.cmp(&b.backlog).then(b.id.cmp(&a.id)))
            .expect("choose() requires at least one link")
            .id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views(specs: &[(usize, usize, u64)]) -> Vec<LinkView> {
        specs.iter().map(|&(id, backlog, head_seq)| LinkView { id, backlog, head_seq }).collect()
    }

    #[test]
    fn fifo_picks_oldest_head() {
        let mut c = Scheduler::Fifo.build();
        let links = views(&[(0, 1, 9), (1, 3, 2), (2, 1, 5)]);
        assert_eq!(c.choose(&links), 1);
    }

    #[test]
    fn longest_queue_picks_biggest_backlog_lowest_id() {
        let mut c = Scheduler::LongestQueue.build();
        let links = views(&[(0, 2, 1), (1, 5, 9), (2, 5, 3)]);
        assert_eq!(c.choose(&links), 1);
    }

    #[test]
    fn random_is_reproducible_across_builds() {
        let links = views(&[(0, 1, 1), (1, 1, 2), (2, 1, 3), (3, 1, 4)]);
        let seq1: Vec<usize> = {
            let mut c = Scheduler::Random { seed: 42 }.build();
            (0..20).map(|_| c.choose(&links)).collect()
        };
        let seq2: Vec<usize> = {
            let mut c = Scheduler::Random { seed: 42 }.build();
            (0..20).map(|_| c.choose(&links)).collect()
        };
        assert_eq!(seq1, seq2);
        // And a different seed differs somewhere (overwhelmingly likely).
        let seq3: Vec<usize> = {
            let mut c = Scheduler::Random { seed: 43 }.build();
            (0..20).map(|_| c.choose(&links)).collect()
        };
        assert_ne!(seq1, seq3);
    }

    #[test]
    fn random_only_picks_listed_links() {
        let mut c = Scheduler::Random { seed: 7 }.build();
        let links = views(&[(4, 1, 0), (9, 2, 1)]);
        for _ in 0..50 {
            let id = c.choose(&links);
            assert!(id == 4 || id == 9);
        }
    }

    #[test]
    fn default_is_fifo() {
        assert_eq!(Scheduler::default(), Scheduler::Fifo);
    }
}
