//! Delivery scheduling — the asynchrony adversary.
//!
//! In the asynchronous model every message has an arbitrary finite delay.
//! The engine models this by keeping one FIFO queue per link and letting a
//! scheduling policy choose, at each step, *which non-empty link* delivers
//! its head message. FIFO-per-link is preserved in every policy (links are
//! channels); the adversary only controls interleaving across links.
//!
//! # The incremental active-link index
//!
//! Naively, each delivery would scan all `2n` link queues to collect the
//! non-empty ones and then apply the policy — O(n) engine overhead *per
//! event*, an extra factor of `n` on exactly the large rings where the
//! paper's Θ(n log n)-bit protocols get interesting. Instead, every policy
//! here is a stateful [`LinkIndex`]: the engine notifies it on each queue
//! transition (`on_push` / `on_pop`) and asks `choose()` for the next
//! link, which each policy answers in O(1) or O(log n):
//!
//! * [`Scheduler::Fifo`] — a monotone **min-heap** keyed by the head
//!   message's global sequence number. A link owns exactly one heap entry
//!   while non-empty; a pop replaces the entry with the link's next head
//!   (whose seq is strictly larger), so lazy deletion is never needed.
//! * [`Scheduler::LongestQueue`] — **backlog buckets**: `buckets[b]` holds
//!   the ids of links with backlog `b` (an ordered set, because ties break
//!   towards the lowest id). Pushes and pops move a link one bucket up or
//!   down; the maximum backlog changes by at most one per operation, so
//!   tracking it is amortized O(1).
//! * [`Scheduler::Random`] — a **Fenwick (binary indexed) tree** over link
//!   ids storing 1 for each non-empty link. `choose()` draws `k` and finds
//!   the `k`-th smallest non-empty id by binary descent. The tree — rather
//!   than a dense swap-remove vector — is what keeps the policy
//!   *byte-identical* to the historical scan implementation: the scan
//!   indexed into the id-sorted list of non-empty links, so the `k`-th
//!   pick must be the `k`-th smallest id, an order a swap-remove vector
//!   does not maintain.
//!
//! # Oracle testing
//!
//! The pre-index scan implementation is retained as a *reference oracle*
//! ([`testkit::NaiveChooser`], `#[doc(hidden)]`, compiled only for tests
//! and the scheduler-equivalence suite): given the full list of non-empty
//! links it picks exactly what the seed engine picked. Property tests
//! (`crates/sim/tests/sched_equiv.rs`) drive both implementations through
//! randomized push/deliver schedules and assert the chosen link sequences
//! are identical for every policy, and the engine's own determinism suite
//! pins full-run equivalence. Each index also counts its elementary
//! operations ([`LinkIndex::index_ops`]) so tests can assert the
//! per-event cost stays O(log n) instead of O(n).
//!
//! The sharded engine (`crate::shard`) leans on the same abstraction
//! from the other side: its coordinator replays a payload-free replica
//! of the link state through a second `LinkIndex` instance, so the
//! merged delivery order *is* this module's pick order — one policy
//! implementation, shared by both engines, checked against one oracle.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Policy choosing the next link to deliver from.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Scheduler {
    /// Deliver messages in global send order (the "synchronous-looking"
    /// baseline; still a legal asynchronous execution).
    #[default]
    Fifo,
    /// Uniformly random choice among non-empty links, seeded for
    /// reproducibility.
    Random {
        /// RNG seed; equal seeds give equal executions.
        seed: u64,
    },
    /// Always deliver from the non-empty link with the *largest* backlog,
    /// breaking ties by lowest link index. A simple adversarial policy
    /// that maximizes reordering across links.
    LongestQueue,
}

impl Scheduler {
    /// Builds the incremental index for a ring with `links` link queues.
    pub(crate) fn build_index(&self, links: usize) -> Box<dyn LinkIndex> {
        match self {
            Scheduler::Fifo => Box::new(FifoIndex::new(links)),
            Scheduler::Random { seed } => Box::new(RandomIndex::new(links, *seed)),
            Scheduler::LongestQueue => Box::new(LongestQueueIndex::new(links)),
        }
    }
}

/// An incrementally maintained index over the non-empty links.
///
/// The engine owns one `LinkIndex` per run and keeps it in sync with the
/// link queues: [`on_push`](LinkIndex::on_push) after every enqueue,
/// [`on_pop`](LinkIndex::on_pop) after every dequeue. Between updates,
/// [`choose`](LinkIndex::choose) returns the policy's pick among the
/// currently non-empty links without scanning them.
///
/// Contract (upheld by the engine, asserted in debug builds):
///
/// * notifications report the queue state *after* the operation;
/// * the engine only pops the link most recently returned by `choose`
///   (or the unique non-empty link, via the single-link fast path).
///
/// This trait is public only so the scheduler-equivalence tests can drive
/// implementations directly; it is not part of the supported API.
#[doc(hidden)]
pub trait LinkIndex {
    /// A message with global sequence number `seq` was enqueued on `link`;
    /// the link's backlog is now `backlog` (≥ 1).
    fn on_push(&mut self, link: usize, seq: u64, backlog: usize);

    /// The head message of `link` was dequeued; the link's new head (if
    /// any) has sequence number `next_head_seq` and the backlog is now
    /// `backlog`.
    fn on_pop(&mut self, link: usize, next_head_seq: Option<u64>, backlog: usize);

    /// The policy's pick among the non-empty links. Must not be called
    /// while every link is empty.
    fn choose(&mut self) -> usize;

    /// Invoked *instead of* [`choose`](LinkIndex::choose) when exactly one
    /// link is non-empty and the engine short-circuits the pick. Policies
    /// whose choice has side effects (the random policy consumes RNG
    /// state) replicate them here so executions stay identical with and
    /// without the fast path.
    fn on_trivial_choose(&mut self) {}

    /// Cumulative count of elementary index operations (heap pushes/pops,
    /// bucket moves, Fenwick node visits). Test instrumentation: the
    /// equivalence suite asserts this stays O(log n) per event where the
    /// historical scan cost O(n).
    fn index_ops(&self) -> u64;

    /// Exports the policy's RNG state for a checkpoint; `None` for
    /// deterministic policies with no RNG. The occupancy structure itself
    /// is *not* exported — restore rebuilds it by replaying the link
    /// queues — but RNG state cannot be replayed without re-running the
    /// whole prefix, so it travels in the snapshot.
    fn export_rng(&self) -> Option<Vec<u64>> {
        None
    }

    /// Restores RNG state exported by [`export_rng`](LinkIndex::export_rng).
    /// A no-op for policies without RNG.
    fn import_rng(&mut self, state: &[u64]) {
        let _ = state;
    }
}

/// FIFO policy: a min-heap of `(head_seq, link)` with one entry per
/// non-empty link.
///
/// Sequence numbers within a link are strictly increasing, so the global
/// minimum over all queued messages always sits at some link's head and
/// the heap top is exactly the scan's `min_by_key(head_seq)` pick.
struct FifoIndex {
    heap: BinaryHeap<Reverse<(u64, usize)>>,
    ops: u64,
}

impl FifoIndex {
    fn new(links: usize) -> Self {
        Self { heap: BinaryHeap::with_capacity(links), ops: 0 }
    }
}

impl LinkIndex for FifoIndex {
    fn on_push(&mut self, link: usize, seq: u64, backlog: usize) {
        self.ops += 1;
        // Only a push that makes the link non-empty changes its head.
        if backlog == 1 {
            self.heap.push(Reverse((seq, link)));
        }
    }

    fn on_pop(&mut self, link: usize, next_head_seq: Option<u64>, _backlog: usize) {
        self.ops += 1;
        // The engine pops only the link this policy chose, which is the
        // heap top; replace its entry with the link's next head, if any.
        let top = self.heap.pop().expect("pop notification without queued links");
        debug_assert_eq!(top.0 .1, link, "popped link must be the FIFO minimum");
        if let Some(seq) = next_head_seq {
            self.heap.push(Reverse((seq, link)));
        }
    }

    fn choose(&mut self) -> usize {
        self.ops += 1;
        self.heap.peek().expect("choose() requires a non-empty link").0 .1
    }

    fn index_ops(&self) -> u64 {
        self.ops
    }
}

/// Longest-queue policy: links bucketed by backlog, ordered within each
/// bucket so ties break towards the lowest id.
struct LongestQueueIndex {
    /// `buckets[b]` = ids of links whose backlog is exactly `b` (`b ≥ 1`).
    buckets: Vec<BTreeSet<usize>>,
    /// Largest `b` with `buckets[b]` non-empty; 0 when all links are empty.
    max_backlog: usize,
    ops: u64,
}

impl LongestQueueIndex {
    fn new(_links: usize) -> Self {
        Self { buckets: vec![BTreeSet::new(); 2], max_backlog: 0, ops: 0 }
    }

    fn move_link(&mut self, link: usize, from: usize, to: usize) {
        if from > 0 {
            let removed = self.buckets[from].remove(&link);
            debug_assert!(removed, "link {link} missing from backlog bucket {from}");
        }
        if to > 0 {
            if self.buckets.len() <= to {
                self.buckets.resize(to + 1, BTreeSet::new());
            }
            self.buckets[to].insert(link);
        }
    }
}

impl LinkIndex for LongestQueueIndex {
    fn on_push(&mut self, link: usize, _seq: u64, backlog: usize) {
        self.ops += 1;
        self.move_link(link, backlog - 1, backlog);
        self.max_backlog = self.max_backlog.max(backlog);
    }

    fn on_pop(&mut self, link: usize, _next_head_seq: Option<u64>, backlog: usize) {
        self.ops += 1;
        self.move_link(link, backlog + 1, backlog);
        // The maximum drops by at most one per pop; each loop iteration
        // here is paid for by the push that raised max_backlog earlier.
        while self.max_backlog > 0 && self.buckets[self.max_backlog].is_empty() {
            self.max_backlog -= 1;
            self.ops += 1;
        }
    }

    fn choose(&mut self) -> usize {
        self.ops += 1;
        *self.buckets[self.max_backlog].iter().next().expect("choose() requires a non-empty link")
    }

    fn index_ops(&self) -> u64 {
        self.ops
    }
}

/// Random policy: a Fenwick tree of 0/1 occupancy over link ids.
///
/// `choose()` draws `k` uniformly over the non-empty count and selects the
/// `k`-th smallest non-empty link id by binary descent — the same link the
/// historical scan's `links[rng.gen_range(0..len)]` picked, because the
/// scan's list was id-sorted. Equal seeds therefore give executions
/// byte-identical to the seed implementation.
struct RandomIndex {
    rng: StdRng,
    /// 1-based Fenwick tree over link ids; `tree[i]` covers a power-of-two
    /// span of links ending at id `i - 1`.
    tree: Vec<u32>,
    /// Number of currently non-empty links.
    occupied: usize,
    /// Largest power of two ≤ tree span, the descent's starting stride.
    top_stride: usize,
    ops: u64,
}

impl RandomIndex {
    fn new(links: usize, seed: u64) -> Self {
        let top_stride = if links == 0 { 0 } else { links.next_power_of_two() };
        Self {
            rng: StdRng::seed_from_u64(seed),
            tree: vec![0; links + 1],
            occupied: 0,
            top_stride,
            ops: 0,
        }
    }

    /// Adds `delta` (±1) to link `id`'s occupancy.
    fn update(&mut self, id: usize, delta: i32) {
        let mut i = id + 1;
        while i < self.tree.len() {
            self.tree[i] = self.tree[i].wrapping_add_signed(delta);
            i += i & i.wrapping_neg();
            self.ops += 1;
        }
    }

    /// Index of the `(k+1)`-th non-empty link (0-based rank `k`).
    fn select(&mut self, k: usize) -> usize {
        debug_assert!(k < self.occupied);
        let mut rank = (k + 1) as u32;
        let mut pos = 0usize;
        let mut stride = self.top_stride;
        while stride > 0 {
            let next = pos + stride;
            if next < self.tree.len() && self.tree[next] < rank {
                rank -= self.tree[next];
                pos = next;
            }
            stride >>= 1;
            self.ops += 1;
        }
        pos // 1-based tree position `pos + 1` holds the answer; link id = pos.
    }
}

impl LinkIndex for RandomIndex {
    fn on_push(&mut self, link: usize, _seq: u64, backlog: usize) {
        if backlog == 1 {
            self.update(link, 1);
            self.occupied += 1;
        }
    }

    fn on_pop(&mut self, link: usize, _next_head_seq: Option<u64>, backlog: usize) {
        if backlog == 0 {
            self.update(link, -1);
            self.occupied -= 1;
        }
    }

    fn choose(&mut self) -> usize {
        let k = self.rng.gen_range(0..self.occupied);
        self.select(k)
    }

    fn on_trivial_choose(&mut self) {
        // The scan implementation drew `gen_range(0..1)` even with a single
        // candidate; consume the identical RNG state so executions with the
        // single-link fast path stay byte-identical to ones without it.
        let k = self.rng.gen_range(0..1usize);
        debug_assert_eq!(k, 0);
        self.ops += 1;
    }

    fn index_ops(&self) -> u64 {
        self.ops
    }

    fn export_rng(&self) -> Option<Vec<u64>> {
        Some(self.rng.state().to_vec())
    }

    fn import_rng(&mut self, state: &[u64]) {
        let mut s = [0u64; 4];
        for (slot, word) in s.iter_mut().zip(state) {
            *slot = *word;
        }
        self.rng = StdRng::from_state(s);
    }
}

/// Test-support surface: the retained naive-scan oracle and direct access
/// to the incremental indexes.
///
/// Everything here exists for the scheduler-equivalence property tests
/// (`crates/sim/tests/sched_equiv.rs`) and the soak benches; it is
/// `#[doc(hidden)]` because it is not part of the supported API and may
/// change shape in any release.
#[doc(hidden)]
pub mod testkit {
    use super::{LinkIndex, Scheduler};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A link's visible state, as the scan-based seed engine presented it.
    #[derive(Debug, Clone, Copy)]
    pub struct LinkView {
        /// Dense link id.
        pub id: usize,
        /// Number of queued messages.
        pub backlog: usize,
        /// Global sequence number of the head message (send order).
        pub head_seq: u64,
    }

    /// The seed implementation's scan-based policies, verbatim: the oracle
    /// the incremental [`LinkIndex`] implementations are tested against.
    ///
    /// `links` must be sorted by id (the seed engine produced them that
    /// way by scanning queues in id order) and non-empty.
    pub enum NaiveChooser {
        /// Oldest head wins.
        Fifo,
        /// Uniform over the id-sorted non-empty list.
        Random(StdRng),
        /// Largest backlog wins, ties to the lowest id.
        LongestQueue,
    }

    impl NaiveChooser {
        /// Builds the oracle for `scheduler`.
        #[must_use]
        pub fn new(scheduler: &Scheduler) -> Self {
            match scheduler {
                Scheduler::Fifo => NaiveChooser::Fifo,
                Scheduler::Random { seed } => NaiveChooser::Random(StdRng::seed_from_u64(*seed)),
                Scheduler::LongestQueue => NaiveChooser::LongestQueue,
            }
        }

        /// The seed engine's pick among `links` (non-empty, id-sorted).
        pub fn choose(&mut self, links: &[LinkView]) -> usize {
            match self {
                NaiveChooser::Fifo => {
                    links
                        .iter()
                        .min_by_key(|l| l.head_seq)
                        .expect("choose() requires at least one link")
                        .id
                }
                NaiveChooser::Random(rng) => links[rng.gen_range(0..links.len())].id,
                NaiveChooser::LongestQueue => {
                    links
                        .iter()
                        .max_by(|a, b| a.backlog.cmp(&b.backlog).then(b.id.cmp(&a.id)))
                        .expect("choose() requires at least one link")
                        .id
                }
            }
        }
    }

    /// Builds the production incremental index for `scheduler` over
    /// `links` link queues, for driving directly in tests.
    #[must_use]
    pub fn build_index(scheduler: &Scheduler, links: usize) -> Box<dyn LinkIndex> {
        scheduler.build_index(links)
    }
}

#[cfg(test)]
mod tests {
    use super::testkit::{build_index, LinkView, NaiveChooser};
    use super::*;

    /// Replays `pushes` (id-ordered seq assignment) into an index and
    /// returns it alongside the equivalent LinkView list.
    fn index_with(
        scheduler: &Scheduler,
        links: usize,
        heads: &[(usize, u64, usize)], // (id, head_seq, backlog)
    ) -> (Box<dyn LinkIndex>, Vec<LinkView>) {
        let mut idx = build_index(scheduler, links);
        // Enqueue each link's backlog: head first (head_seq), then
        // arbitrary later seqs, mirroring FIFO queue growth.
        for &(id, head_seq, backlog) in heads {
            for j in 0..backlog {
                idx.on_push(id, head_seq + j as u64 * 1000, j + 1);
            }
        }
        let views = heads
            .iter()
            .map(|&(id, head_seq, backlog)| LinkView { id, backlog, head_seq })
            .collect();
        (idx, views)
    }

    #[test]
    fn fifo_picks_oldest_head() {
        let (mut idx, _) = index_with(&Scheduler::Fifo, 3, &[(0, 9, 1), (1, 2, 3), (2, 5, 1)]);
        assert_eq!(idx.choose(), 1);
    }

    #[test]
    fn fifo_pop_promotes_next_head() {
        let mut idx = build_index(&Scheduler::Fifo, 4);
        idx.on_push(2, 0, 1);
        idx.on_push(2, 1, 2);
        idx.on_push(0, 2, 1);
        assert_eq!(idx.choose(), 2);
        idx.on_pop(2, Some(1), 1);
        assert_eq!(idx.choose(), 2, "seq 1 still beats seq 2");
        idx.on_pop(2, None, 0);
        assert_eq!(idx.choose(), 0);
    }

    #[test]
    fn longest_queue_picks_biggest_backlog_lowest_id() {
        let (mut idx, _) =
            index_with(&Scheduler::LongestQueue, 3, &[(0, 1, 2), (1, 9, 5), (2, 3, 5)]);
        assert_eq!(idx.choose(), 1);
    }

    #[test]
    fn longest_queue_max_tracks_pops() {
        let mut idx = build_index(&Scheduler::LongestQueue, 3);
        for j in 0..3 {
            idx.on_push(1, j, j as usize + 1);
        }
        idx.on_push(0, 10, 1);
        assert_eq!(idx.choose(), 1);
        idx.on_pop(1, Some(1), 2);
        idx.on_pop(1, Some(2), 1);
        // Backlogs now tie at 1; the lowest id wins.
        assert_eq!(idx.choose(), 0);
    }

    #[test]
    fn random_is_reproducible_across_builds() {
        let heads = [(0usize, 1u64, 1usize), (1, 2, 1), (2, 3, 1), (3, 4, 1)];
        let seq_for = |seed: u64| -> Vec<usize> {
            let (mut idx, _) = index_with(&Scheduler::Random { seed }, 4, &heads);
            (0..20).map(|_| idx.choose()).collect()
        };
        assert_eq!(seq_for(42), seq_for(42));
        // And a different seed differs somewhere (overwhelmingly likely).
        assert_ne!(seq_for(42), seq_for(43));
    }

    #[test]
    fn random_only_picks_listed_links() {
        let (mut idx, _) = index_with(&Scheduler::Random { seed: 7 }, 12, &[(4, 0, 1), (9, 1, 2)]);
        for _ in 0..50 {
            let id = idx.choose();
            assert!(id == 4 || id == 9);
        }
    }

    #[test]
    fn random_matches_naive_oracle_stream() {
        // Same seed, same candidate set ⇒ the Fenwick index and the scan
        // oracle draw identical RNG values and pick identical links.
        let heads = [(1usize, 0u64, 1usize), (3, 1, 2), (4, 2, 1), (10, 3, 4)];
        let scheduler = Scheduler::Random { seed: 1234 };
        let (mut idx, views) = index_with(&scheduler, 16, &heads);
        let mut oracle = NaiveChooser::new(&scheduler);
        for _ in 0..200 {
            assert_eq!(idx.choose(), oracle.choose(&views));
        }
    }

    #[test]
    fn trivial_choose_keeps_random_stream_aligned() {
        // Drawing via on_trivial_choose must leave the RNG exactly where a
        // full choose() over one candidate would have.
        let scheduler = Scheduler::Random { seed: 9 };
        let (mut fast, _) = index_with(&scheduler, 8, &[(5, 0, 1)]);
        let (mut slow, _) = index_with(&scheduler, 8, &[(5, 0, 1)]);
        fast.on_trivial_choose();
        assert_eq!(slow.choose(), 5);
        // Open a second link; both indexes must now agree on every pick.
        fast.on_push(2, 1, 1);
        slow.on_push(2, 1, 1);
        for _ in 0..50 {
            assert_eq!(fast.choose(), slow.choose());
        }
    }

    #[test]
    fn rng_export_import_resumes_the_pick_stream() {
        let scheduler = Scheduler::Random { seed: 77 };
        let heads = [(0usize, 0u64, 1usize), (1, 1, 1), (2, 2, 1), (3, 3, 1)];
        let (mut idx, _) = index_with(&scheduler, 4, &heads);
        for _ in 0..13 {
            idx.choose();
        }
        let state = idx.export_rng().expect("random policy exports RNG state");
        let tail: Vec<usize> = (0..40).map(|_| idx.choose()).collect();
        // A fresh index with the same occupancy but imported RNG continues
        // the original stream exactly.
        let (mut resumed, _) = index_with(&scheduler, 4, &heads);
        resumed.import_rng(&state);
        let replay: Vec<usize> = (0..40).map(|_| resumed.choose()).collect();
        assert_eq!(tail, replay);
    }

    #[test]
    fn deterministic_policies_export_no_rng() {
        let (idx, _) = index_with(&Scheduler::Fifo, 2, &[(0, 0, 1)]);
        assert!(idx.export_rng().is_none());
        let (mut idx, _) = index_with(&Scheduler::LongestQueue, 2, &[(0, 0, 1)]);
        idx.import_rng(&[1, 2, 3, 4]); // no-op, must not panic
        assert!(idx.export_rng().is_none());
    }

    #[test]
    fn index_ops_counts_work() {
        let mut idx = build_index(&Scheduler::Fifo, 4);
        let before = idx.index_ops();
        idx.on_push(0, 0, 1);
        idx.choose();
        assert!(idx.index_ops() > before);
    }

    #[test]
    fn default_is_fifo() {
        assert_eq!(Scheduler::default(), Scheduler::Fifo);
    }
}
