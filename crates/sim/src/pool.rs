//! Work-stealing thread pool for fanning sweep grids out to OS threads.
//!
//! The experiment layer measures (protocol, ring size, seed) grid points
//! that are completely independent of each other; this module runs them
//! concurrently without giving up the property every experiment depends
//! on: **regenerability**. Two contracts make parallel sweeps
//! bit-identical to serial ones:
//!
//! 1. **Ordered collection.** [`ordered_map`] returns results in *input*
//!    order, whatever order workers finish in. Each job travels with its
//!    input index; results are placed by index, so downstream folds
//!    (worst-case selection, fitting, report rows) see exactly the
//!    sequence a serial loop would have produced.
//! 2. **Per-point RNG seeding.** Callers must not thread one RNG through
//!    the jobs (that would make point `k`'s workload depend on how many
//!    points ran before it). Instead every grid point derives its own
//!    seed from the sweep's base seed and the point's coordinates — see
//!    `SweepGrid` in `ringleader_analysis` — so a point's workload is a
//!    pure function of (base seed, coordinates), independent of worker
//!    count, scheduling, and completion order.
//!
//! Scheduling is work-stealing over plain `std::thread` + crossbeam
//! channels (no external pool dependency): jobs are dealt round-robin
//! into one MPMC queue per worker; a worker drains its own queue first
//! and then steals from its siblings', so a worker stuck on an expensive
//! point never strands cheap points behind it. Because the whole grid is
//! enqueued before the workers start, queues only ever report `Ok` or
//! `Disconnected` — workers never block mid-map.
//!
//! A job that panics does not poison the map: the panic is caught, the
//! remaining jobs still run, and the first panic (in input order) is
//! re-raised on the caller's thread after every worker has finished —
//! the same observable behaviour as a serial loop that panics at that
//! point, minus the later results.
//!
//! [`ThreadPool`] is the long-lived variant for `'static` jobs (soak
//! rigs, services): explicit handle, graceful drop (disconnect + join),
//! workers that survive job panics. The sharded engine (`crate::shard`)
//! runs its arc workers on a `ThreadPool`: the panic-absorbing workers
//! are what turn a panicking process handler into a channel disconnect
//! the coordinator can report as a clean `ShardFailed`, and the
//! drain-then-join drop is what guarantees no worker outlives a run.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use ringleader_obs::Metrics;

/// Default worker count: the machine's available parallelism.
#[must_use]
pub fn default_workers() -> usize {
    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `f` over `items` on `workers` threads, returning the results in
/// input order regardless of completion order.
///
/// `f` receives each item's input index alongside the item. With
/// `workers <= 1` the map degenerates to a strictly serial in-place loop
/// (no threads spawned), which is also the reference behaviour parallel
/// runs must reproduce.
///
/// # Panics
///
/// If one or more jobs panic, every remaining job still runs, and the
/// panic of the earliest affected *input index* is re-raised here once
/// all workers have stopped — deterministic, unlike racing the workers.
pub fn ordered_map<I, T, F>(workers: usize, items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        return items.into_iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    let n = items.len();
    let workers = workers.min(n);

    type Queue<I> = (Sender<(usize, I)>, Receiver<(usize, I)>);
    // One queue per worker; the whole grid is dealt before anyone runs.
    let mut queues: Vec<Queue<I>> = Vec::new();
    for _ in 0..workers {
        queues.push(unbounded());
    }
    for (i, item) in items.into_iter().enumerate() {
        assert!(queues[i % workers].0.send((i, item)).is_ok(), "receiver held below");
    }
    let receivers: Vec<Receiver<(usize, I)>> = queues.iter().map(|(_, rx)| rx.clone()).collect();
    // Drop the senders: from here on every queue is a frozen deque and
    // `try_recv` can only yield `Ok` or `Disconnected`.
    drop(queues);

    let (results_tx, results_rx) = unbounded::<(usize, Result<T, Panic>)>();
    thread::scope(|scope| {
        for w in 0..workers {
            let receivers = &receivers;
            let f = &f;
            let results_tx = results_tx.clone();
            scope.spawn(move || {
                // Own queue first, then steal from siblings in ring order.
                loop {
                    let mut job = None;
                    for k in 0..receivers.len() {
                        if let Ok(next) = receivers[(w + k) % receivers.len()].try_recv() {
                            job = Some(next);
                            break;
                        }
                    }
                    let Some((i, item)) = job else { break };
                    let out = catch_unwind(AssertUnwindSafe(|| f(i, item)));
                    let _ = results_tx.send((i, out));
                }
            });
        }
        drop(results_tx);

        let mut slots: Vec<Option<Result<T, Panic>>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (i, out) = results_rx.recv().expect("every job reports exactly once");
            slots[i] = Some(out);
        }
        // Workers have sent everything; the scope joins them on exit.
        let mut out = Vec::with_capacity(n);
        let mut first_panic: Option<Panic> = None;
        for slot in slots {
            match slot.expect("all slots filled") {
                Ok(v) => out.push(v),
                Err(p) => {
                    if first_panic.is_none() {
                        first_panic = Some(p);
                    }
                }
            }
        }
        if let Some(p) = first_panic {
            resume_unwind(p);
        }
        out
    })
}

type Panic = Box<dyn std::any::Any + Send + 'static>;
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A long-lived pool of worker threads for `'static` jobs.
///
/// Workers block on a shared injector queue with a *real* `recv` park
/// (no polling; see the crossbeam shim) and exit when the pool drops the
/// injector. A panicking job is caught and counted — the worker itself
/// survives, so one bad job cannot shrink the pool.
///
/// # Examples
///
/// ```rust
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let pool = ringleader_sim::pool::ThreadPool::new(4);
/// let hits = Arc::new(AtomicUsize::new(0));
/// for _ in 0..32 {
///     let hits = Arc::clone(&hits);
///     pool.execute(move || {
///         hits.fetch_add(1, Ordering::SeqCst);
///     });
/// }
/// drop(pool); // disconnects the queue, drains, joins — no deadlock
/// assert_eq!(hits.load(Ordering::SeqCst), 32);
/// ```
pub struct ThreadPool {
    injector: Option<Sender<Job>>,
    handles: Vec<thread::JoinHandle<()>>,
    panicked: Arc<AtomicUsize>,
    /// Jobs enqueued but not yet dequeued by a worker; feeds the
    /// `pool.queue_depth_max` gauge.
    pending: Arc<AtomicUsize>,
    metrics: Metrics,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("workers", &self.handles.len())
            .field("panicked_jobs", &self.panicked.load(Ordering::SeqCst))
            .finish()
    }
}

impl ThreadPool {
    /// Spawns a pool of `workers` threads (at least one).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        Self::new_with_metrics(workers, Metrics::disabled())
    }

    /// Spawns a pool whose job flow records into `metrics`: `pool.jobs`
    /// (enqueued), `pool.parks` (a worker found the queue empty and
    /// blocked), and the `pool.queue_depth_max` gauge. A disabled handle
    /// makes this identical to [`new`](Self::new).
    #[must_use]
    pub fn new_with_metrics(workers: usize, metrics: Metrics) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = unbounded::<Job>();
        let panicked = Arc::new(AtomicUsize::new(0));
        let pending = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let rx = rx.clone();
            let panicked = Arc::clone(&panicked);
            let pending = Arc::clone(&pending);
            let metrics = metrics.clone();
            handles.push(thread::spawn(move || {
                loop {
                    // Drain without blocking while work is queued; an
                    // empty queue is a park — the worker blocks on a
                    // *real* recv until a job arrives or the pool drops
                    // its injector (disconnect ends the loop).
                    let job = match rx.try_recv() {
                        Ok(job) => job,
                        Err(TryRecvError::Empty) => {
                            metrics.counter_add("pool.parks", 1);
                            match rx.recv() {
                                Ok(job) => job,
                                Err(_) => break,
                            }
                        }
                        Err(TryRecvError::Disconnected) => break,
                    };
                    pending.fetch_sub(1, Ordering::SeqCst);
                    if catch_unwind(AssertUnwindSafe(job)).is_err() {
                        panicked.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }));
        }
        ThreadPool { injector: Some(tx), handles, panicked, pending, metrics }
    }

    /// Enqueues a job; some idle worker picks it up.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        let depth = self.pending.fetch_add(1, Ordering::SeqCst) + 1;
        self.metrics.counter_add("pool.jobs", 1);
        self.metrics.gauge_max("pool.queue_depth_max", depth as u64);
        let sent = self.injector.as_ref().expect("injector lives until drop").send(Box::new(job));
        assert!(sent.is_ok(), "workers hold the receiver until drop");
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Jobs that panicked since the pool started.
    #[must_use]
    pub fn panicked_jobs(&self) -> usize {
        self.panicked.load(Ordering::SeqCst)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Disconnect the injector; workers drain what's queued and exit.
        self.injector.take();
        for h in self.handles.drain(..) {
            // A worker can only have panicked via a bug in this module
            // (jobs are caught); don't double-panic during drop.
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn ordered_map_preserves_input_order() {
        for workers in [1usize, 2, 4, 9] {
            let items: Vec<usize> = (0..50).collect();
            let out = ordered_map(workers, items, |i, x| {
                assert_eq!(i, x);
                // Reverse the natural completion order: early items slow.
                if x < 8 {
                    thread::sleep(Duration::from_millis(3));
                }
                x * 10
            });
            assert_eq!(out, (0..50).map(|x| x * 10).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn ordered_map_handles_empty_and_single() {
        let empty: Vec<u8> = Vec::new();
        assert!(ordered_map(4, empty, |_, x| x).is_empty());
        assert_eq!(ordered_map(4, vec![7u8], |_, x| x + 1), vec![8]);
    }

    #[test]
    fn ordered_map_propagates_earliest_panic() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            ordered_map(4, (0..20).collect::<Vec<usize>>(), |_, x| {
                if x == 13 {
                    panic!("boom at thirteen");
                }
                if x == 17 {
                    panic!("boom at seventeen");
                }
                x
            })
        }));
        let payload = caught.expect_err("must propagate the panic");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "boom at thirteen", "earliest input index wins");
    }

    #[test]
    fn ordered_map_overlaps_waiting_work() {
        // Jobs that *wait* (as simulation points blocked on channels do)
        // must overlap: 12 jobs × 20 ms on 4 workers ≈ 3 rounds, far
        // below the 240 ms a serial loop needs. Generous bound to stay
        // robust on a loaded single-core CI runner.
        let start = Instant::now();
        let out = ordered_map(4, vec![(); 12], |i, ()| {
            thread::sleep(Duration::from_millis(20));
            i
        });
        let elapsed = start.elapsed();
        assert_eq!(out.len(), 12);
        assert!(elapsed < Duration::from_millis(200), "no overlap: {elapsed:?}");
    }

    #[test]
    fn thread_pool_runs_jobs_and_drops_clean() {
        let pool = ThreadPool::new(3);
        assert_eq!(pool.workers(), 3);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let hits = Arc::clone(&hits);
            pool.execute(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool);
        assert_eq!(hits.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn thread_pool_survives_job_panics() {
        let pool = ThreadPool::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        for i in 0..10 {
            let hits = Arc::clone(&hits);
            pool.execute(move || {
                assert!(i % 2 == 0, "odd jobs blow up");
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        // Drop drains the queue and joins: all even jobs ran, the five
        // odd panics were absorbed without killing workers.
        let counter = Arc::clone(&pool.panicked);
        drop(pool);
        assert_eq!(hits.load(Ordering::SeqCst), 5);
        assert_eq!(counter.load(Ordering::SeqCst), 5);
    }
}
