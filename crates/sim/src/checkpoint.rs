//! Engine checkpoint/restore — crash safety for massive runs.
//!
//! An [`EngineSnapshot`] captures *everything the event loop needs* to
//! continue a run as if it had never stopped: per-process protocol
//! state, every link queue with its global sequence numbers, the
//! scheduler's RNG (the occupancy index itself is rebuilt by replaying
//! the queues), accumulated [`ExecStats`], the trace or trace ring, the
//! global seq clock, the delivery count, and the per-position delivery
//! counters fault plans key on. `run → snapshot at event k → restore →
//! finish` is byte-identical — trace, stats, and exact error positions —
//! to an uninterrupted run; the equivalence proptests in
//! `crates/sim/tests/checkpoint_equiv.rs` pin this across engines and
//! scheduling policies.
//!
//! Snapshots are engine-agnostic: a snapshot captured by the serial
//! engine resumes under the sharded engine (any shard count) and vice
//! versa, because both define the same observables. See the crate docs'
//! *crash safety & faults* section for the sharded quiesce protocol and
//! the threaded engine's restore-only support.
//!
//! Snapshots are serde-serializable (versioned with
//! [`SNAPSHOT_VERSION`]) so the experiments CLI can write them to disk
//! between sweep points and `--resume` after a crash.
//!
//! [`ExecStats`]: crate::ExecStats

use serde::{Deserialize, Serialize};

use ringleader_bitio::BitString;

use crate::engine::Outcome;
use crate::error::SimError;
use crate::sched::Scheduler;
use crate::stats::ExecStats;
use crate::trace::{Trace, TraceRing};

/// Format version stamped into every [`EngineSnapshot`]; restore rejects
/// other versions with [`SimError::Snapshot`].
pub const SNAPSHOT_VERSION: u32 = 1;

/// A paused run: the complete engine state at a delivery boundary.
///
/// Produced by [`RingRunner::run_until`](crate::RingRunner::run_until) /
/// [`resume_until`](crate::RingRunner::resume_until); consumed by
/// [`resume`](crate::RingRunner::resume). The run's *configuration*
/// (scheduler, known-`n` mode, event budget, tracing mode) travels
/// inside the snapshot, so resuming reproduces the interrupted run even
/// on a differently-configured runner; only the shard count and fault
/// plan of the resuming runner apply, since neither affects observables.
///
/// The fault plan is deliberately **not** serialized: the caller
/// re-supplies it on resume, and the snapshot's per-position delivery
/// counters keep its triggers aligned with the interrupted execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineSnapshot {
    pub(crate) version: u32,
    pub(crate) n: usize,
    pub(crate) scheduler: Scheduler,
    pub(crate) known_ring_size: bool,
    pub(crate) max_events: usize,
    /// Global send/trace sequence clock.
    pub(crate) seq: u64,
    /// Deliveries performed so far.
    pub(crate) deliveries: usize,
    /// Per-receiver delivery counts (fault-plan coordinates).
    pub(crate) position_deliveries: Vec<u64>,
    pub(crate) stats: ExecStats,
    /// Queue contents per link id (`0..n` clockwise, `n..2n`
    /// counter-clockwise), front of queue first.
    pub(crate) links: Vec<Vec<(u64, BitString)>>,
    /// Scheduler RNG state ([`Scheduler::Random`] only).
    pub(crate) rng: Option<Vec<u64>>,
    /// Per-process protocol state from [`Process::save_state`],
    /// positions `0..n`.
    ///
    /// [`Process::save_state`]: crate::Process::save_state
    pub(crate) processes: Vec<Vec<u8>>,
    pub(crate) trace: Option<Trace>,
    pub(crate) ring: Option<TraceRing>,
}

impl EngineSnapshot {
    /// The snapshot format version.
    #[must_use]
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Ring size the snapshot was captured on.
    #[must_use]
    pub fn ring_size(&self) -> usize {
        self.n
    }

    /// Deliveries performed before the pause.
    #[must_use]
    pub fn deliveries(&self) -> usize {
        self.deliveries
    }

    /// Messages currently in flight across all links.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.links.iter().map(Vec::len).sum()
    }

    /// Checks the snapshot is resumable on a ring of `n` processors.
    pub(crate) fn validate(&self, n: usize) -> Result<(), SimError> {
        if self.version != SNAPSHOT_VERSION {
            return Err(SimError::Snapshot {
                reason: format!(
                    "snapshot version {} unsupported (this build reads {SNAPSHOT_VERSION})",
                    self.version
                ),
            });
        }
        if self.n != n {
            return Err(SimError::Snapshot {
                reason: format!("snapshot of a {}-ring cannot resume a {n}-ring", self.n),
            });
        }
        Ok(())
    }
}

/// Result of [`RingRunner::run_until`](crate::RingRunner::run_until):
/// either the run finished before the pause point, or it paused and
/// produced a snapshot.
// `Done` is much larger than the boxed `Paused` pointer, but the enum is
// a transient return value consumed immediately — boxing `Outcome` would
// cost an allocation on every completed run to save nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum RunPhase {
    /// The run completed (decision reached) before the pause point.
    Done(Outcome),
    /// The run paused at the requested delivery boundary.
    Paused(Box<EngineSnapshot>),
}

impl RunPhase {
    /// The outcome, if the run completed.
    #[must_use]
    pub fn outcome(self) -> Option<Outcome> {
        match self {
            RunPhase::Done(o) => Some(o),
            RunPhase::Paused(_) => None,
        }
    }

    /// The snapshot, if the run paused.
    #[must_use]
    pub fn snapshot(self) -> Option<EngineSnapshot> {
        match self {
            RunPhase::Done(_) => None,
            RunPhase::Paused(s) => Some(*s),
        }
    }

    /// Whether the run paused.
    #[must_use]
    pub fn is_paused(&self) -> bool {
        matches!(self, RunPhase::Paused(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(n: usize) -> EngineSnapshot {
        EngineSnapshot {
            version: SNAPSHOT_VERSION,
            n,
            scheduler: Scheduler::Fifo,
            known_ring_size: false,
            max_events: 100,
            seq: 7,
            deliveries: 3,
            position_deliveries: vec![0; n],
            stats: ExecStats::default(),
            links: vec![Vec::new(); 2 * n],
            rng: None,
            processes: vec![Vec::new(); n],
            trace: None,
            ring: None,
        }
    }

    #[test]
    fn validate_checks_version_and_ring_size() {
        assert!(snapshot(4).validate(4).is_ok());
        let err = snapshot(4).validate(5).unwrap_err();
        assert!(matches!(err, SimError::Snapshot { .. }), "{err:?}");
        let mut wrong = snapshot(4);
        wrong.version = 99;
        let err = wrong.validate(4).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
    }

    #[test]
    fn snapshot_roundtrips_through_serde() {
        let mut s = snapshot(2);
        s.links[1].push((5, BitString::parse("101").unwrap()));
        s.rng = Some(vec![1, 2, 3, 4]);
        s.processes[0] = vec![9, 8];
        let content = serde::Serialize::to_content(&s);
        let back: EngineSnapshot = serde::Deserialize::from_content(&content).unwrap();
        assert_eq!(s, back);
        assert_eq!(back.in_flight(), 1);
        assert_eq!(back.ring_size(), 2);
        assert_eq!(back.deliveries(), 3);
        assert_eq!(back.version(), SNAPSHOT_VERSION);
    }
}
