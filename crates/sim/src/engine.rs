//! The discrete-event execution engine.

use std::collections::{BTreeMap, VecDeque};

use ringleader_automata::Word;
use ringleader_bitio::BitString;
use ringleader_obs::Metrics;

use crate::checkpoint::{EngineSnapshot, RunPhase, SNAPSHOT_VERSION};
use crate::context::{Context, Process, Protocol};
use crate::faults::FaultPlan;
use crate::sched::LinkIndex;
use crate::trace::{EventKind, Trace, TraceEvent, TraceRing, TraceSink};
use crate::{Direction, ExecStats, Scheduler, SimError, Topology};

/// Result of a completed run.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// The leader's decision (`Some(true)` = accept). Always `Some` for a
    /// successful run.
    pub decision: Option<bool>,
    /// Bit-complexity accounting.
    pub stats: ExecStats,
    /// Full event trace, when [`RingRunner::record_trace`] was enabled.
    pub trace: Option<Trace>,
    /// Bounded trace, when [`RingRunner::trace_ring`] was enabled.
    pub trace_ring: Option<TraceRing>,
}

impl Outcome {
    /// The decision, treating the (unreachable for well-formed protocols)
    /// missing case as reject.
    #[must_use]
    pub fn accepted(&self) -> bool {
        self.decision == Some(true)
    }
}

/// Configures and runs protocol executions on a simulated ring.
///
/// A non-consuming builder: configure scheduling, tracing, the known-`n`
/// mode, and an event budget, then call [`run`](RingRunner::run) any
/// number of times.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct RingRunner {
    pub(crate) scheduler: Scheduler,
    pub(crate) record_trace: bool,
    pub(crate) trace_ring: Option<usize>,
    pub(crate) known_ring_size: bool,
    pub(crate) max_events: usize,
    pub(crate) shards: usize,
    pub(crate) fault_plan: Option<FaultPlan>,
    pub(crate) epoch_batching: bool,
    pub(crate) metrics: Metrics,
}

impl Default for RingRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl RingRunner {
    /// A runner with FIFO scheduling, no tracing, unknown ring size, and a
    /// generous event budget.
    #[must_use]
    pub fn new() -> Self {
        Self {
            scheduler: Scheduler::Fifo,
            record_trace: false,
            trace_ring: None,
            known_ring_size: false,
            max_events: 50_000_000,
            shards: 1,
            fault_plan: None,
            epoch_batching: true,
            metrics: Metrics::disabled(),
        }
    }

    /// Attaches a metrics handle: run-level counters, histograms, and
    /// timings flow into it (see the crate docs' Observability section).
    /// The default disabled handle costs nothing; either way the run's
    /// observables are byte-identical — metrics read state, never feed
    /// it, and the equivalence suite pins exactly that.
    pub fn metrics(&mut self, metrics: Metrics) -> &mut Self {
        self.metrics = metrics;
        self
    }

    /// Disables (or re-enables) epoch-batched round grants on the sharded
    /// engine, forcing the one-pick-per-round merge path. Test-only: the
    /// equivalence suite pins batched ≡ unbatched; production runs always
    /// batch.
    #[doc(hidden)]
    pub fn epoch_batching(&mut self, on: bool) -> &mut Self {
        self.epoch_batching = on;
        self
    }

    /// Splits single runs across `shards` contiguous arcs, each owned by
    /// a worker thread (see [`crate`] docs on the shard architecture).
    ///
    /// The result is byte-identical to the serial engine for every shard
    /// count; `1` (the default) runs serially. Counts above the ring
    /// size are clamped to one process per shard.
    pub fn shards(&mut self, shards: usize) -> &mut Self {
        self.shards = shards.max(1);
        self
    }

    /// Chooses the delivery [`Scheduler`].
    pub fn scheduler(&mut self, scheduler: Scheduler) -> &mut Self {
        self.scheduler = scheduler;
        self
    }

    /// Enables or disables full event tracing (needed for information-state
    /// extraction and token-discipline validation).
    pub fn record_trace(&mut self, on: bool) -> &mut Self {
        self.record_trace = on;
        self
    }

    /// Enables bounded tracing: keep only the last `capacity` events in a
    /// [`TraceRing`] (plus streamed per-interval stats), the O(capacity)
    /// alternative to [`record_trace`](RingRunner::record_trace) for
    /// `large`/`massive` runs. `0` disables the ring.
    ///
    /// Like full tracing, ring tracing makes deliveries consume sequence
    /// numbers, so a ring-traced run is event-for-event comparable to a
    /// fully-traced one (and differs in seq numbering from an untraced
    /// one, exactly as full tracing always has).
    pub fn trace_ring(&mut self, capacity: usize) -> &mut Self {
        self.trace_ring = (capacity > 0).then_some(capacity);
        self
    }

    /// Installs a deterministic [`FaultPlan`] applied on every delivery.
    /// An empty plan (the default) costs nothing.
    pub fn fault_plan(&mut self, plan: FaultPlan) -> &mut Self {
        self.fault_plan = (!plan.is_empty()).then_some(plan);
        self
    }

    /// Switches the paper's Note 7.4 mode on: every processor learns `n`
    /// via [`Context::known_ring_size`].
    pub fn known_ring_size(&mut self, on: bool) -> &mut Self {
        self.known_ring_size = on;
        self
    }

    /// Caps the number of deliveries before the run aborts with
    /// [`SimError::EventLimitExceeded`]. Guards against runaway protocols.
    pub fn max_events(&mut self, limit: usize) -> &mut Self {
        self.max_events = limit;
        self
    }

    /// Executes `protocol` on the ring labelled with `word`.
    ///
    /// Processor `i` receives letter `word[i]`; processor 0 is the leader
    /// and is started exactly once. The run ends when the leader decides.
    ///
    /// # Errors
    ///
    /// * [`SimError::EmptyRing`] for an empty word.
    /// * [`SimError::IllegalSend`] / [`SimError::FollowerDecided`] /
    ///   [`SimError::Process`] on protocol bugs.
    /// * [`SimError::Stalled`] if traffic dries up without a decision.
    /// * [`SimError::EventLimitExceeded`] if the budget is exhausted.
    pub fn run(&self, protocol: &dyn Protocol, word: &Word) -> Result<Outcome, SimError> {
        finished(self.dispatch(protocol, word, None, None)?)
    }

    /// Runs until `events` deliveries have occurred, then pauses and
    /// captures an [`EngineSnapshot`] — or completes first.
    ///
    /// The pause point is a delivery boundary: the snapshot is taken
    /// before the `events + 1`-th delivery. The sharded engine pauses at
    /// the first coordinator round boundary at or after `events` (see the
    /// crate docs on the quiesce protocol); the resumed run's observables
    /// are identical either way.
    ///
    /// # Errors
    ///
    /// Everything [`run`](RingRunner::run) returns, plus
    /// [`SimError::Snapshot`] if the protocol does not implement
    /// [`Process::save_state`] or the engine cannot capture (the threaded
    /// runner never can).
    pub fn run_until(
        &self,
        protocol: &dyn Protocol,
        word: &Word,
        events: usize,
    ) -> Result<RunPhase, SimError> {
        self.dispatch(protocol, word, None, Some(events))
    }

    /// Resumes a paused run from `snapshot` and drives it to completion.
    ///
    /// `protocol` and `word` must be the ones the snapshot was captured
    /// from (process state is rebuilt by constructing fresh processes and
    /// feeding them [`Process::load_state`]). The snapshot carries the
    /// run's configuration; of this runner's settings only the shard
    /// count and fault plan apply.
    ///
    /// # Errors
    ///
    /// Everything [`run`](RingRunner::run) returns, plus
    /// [`SimError::Snapshot`] on a version or ring-size mismatch.
    pub fn resume(
        &self,
        protocol: &dyn Protocol,
        word: &Word,
        snapshot: &EngineSnapshot,
    ) -> Result<Outcome, SimError> {
        finished(self.dispatch(protocol, word, Some(snapshot), None)?)
    }

    /// Resumes from `snapshot` and pauses again after a total of `events`
    /// deliveries (counted from the run's start, not from the snapshot).
    ///
    /// # Errors
    ///
    /// As [`resume`](RingRunner::resume) and
    /// [`run_until`](RingRunner::run_until).
    pub fn resume_until(
        &self,
        protocol: &dyn Protocol,
        word: &Word,
        snapshot: &EngineSnapshot,
        events: usize,
    ) -> Result<RunPhase, SimError> {
        self.dispatch(protocol, word, Some(snapshot), Some(events))
    }

    /// Shared entry point: route to the sharded or serial engine, with an
    /// optional snapshot to resume from and an optional pause point.
    fn dispatch(
        &self,
        protocol: &dyn Protocol,
        word: &Word,
        resume: Option<&EngineSnapshot>,
        pause_at: Option<usize>,
    ) -> Result<RunPhase, SimError> {
        let n = word.len();
        if n == 0 {
            return Err(SimError::EmptyRing);
        }
        if let Some(snap) = resume {
            snap.validate(n)?;
        }
        let shard_count = self.shards.min(n);
        if shard_count > 1 {
            return crate::shard::run_sharded(self, protocol, word, shard_count, resume, pause_at);
        }
        self.run_serial(protocol, word, resume, pause_at)
    }

    fn run_serial(
        &self,
        protocol: &dyn Protocol,
        word: &Word,
        resume: Option<&EngineSnapshot>,
        pause_at: Option<usize>,
    ) -> Result<RunPhase, SimError> {
        let n = word.len();
        let topology = protocol.topology();
        let mut processes: Vec<Box<dyn Process>> = Vec::with_capacity(n);
        for (i, &sym) in word.symbols().iter().enumerate() {
            processes.push(if i == 0 { protocol.leader(sym) } else { protocol.follower(sym) });
        }

        // A resumed run takes its configuration from the snapshot so it
        // reproduces the interrupted run regardless of this runner's own
        // settings; only the fault plan is re-supplied by the caller.
        let (scheduler, known_ring_size, max_events) = match resume {
            Some(snap) => (snap.scheduler.clone(), snap.known_ring_size, snap.max_events),
            None => (self.scheduler.clone(), self.known_ring_size, self.max_events),
        };

        let mut links = Links::new(n, scheduler.build_index(2 * n));
        let mut stats;
        let mut sink;
        let mut seq: u64;
        let mut deliveries: usize;
        let mut position_deliveries: Vec<u64>;
        let known = known_ring_size.then_some(n);

        // One context for the whole run; reset per event so the outbox
        // buffer's allocation is reused across deliveries.
        let mut ctx = Context::new(true, known);

        if let Some(snap) = resume {
            let _restore_timer = self.metrics.start_timer("checkpoint.restore");
            for (i, bytes) in snap.processes.iter().enumerate() {
                processes[i]
                    .load_state(bytes)
                    .map_err(|source| SimError::Process { position: i, source })?;
            }
            // Replaying each queue front-to-back rebuilds the scheduler
            // index exactly: per-link seqs are increasing, so the FIFO
            // heap, the backlog buckets, and the Fenwick occupancy all
            // land in the state the interrupted run had.
            for (link, queue) in snap.links.iter().enumerate() {
                for (s, payload) in queue {
                    links.push(link, *s, payload.clone());
                }
            }
            if let Some(state) = &snap.rng {
                links.index.import_rng(state);
            }
            stats = snap.stats.clone();
            sink = TraceSink { trace: snap.trace.clone(), ring: snap.ring.clone() };
            seq = snap.seq;
            deliveries = snap.deliveries;
            position_deliveries = snap.position_deliveries.clone();
        } else {
            stats = ExecStats::new(n);
            sink = TraceSink::new(self.record_trace, self.trace_ring);
            seq = 0;
            deliveries = 0;
            position_deliveries = vec![0; n];

            // Start the leader.
            processes[0]
                .on_start(&mut ctx)
                .map_err(|source| SimError::Process { position: 0, source })?;
            let decision = apply_effects(
                &mut ctx, 0, n, topology, &mut links, &mut stats, &mut sink, &mut seq,
            )?;
            if let Some(d) = decision {
                stats.deliveries = deliveries;
                flush_engine_metrics(&self.metrics, &stats, sink.ring.as_ref());
                return Ok(RunPhase::Done(Outcome {
                    decision: Some(d),
                    stats,
                    trace: sink.trace,
                    trace_ring: sink.ring,
                }));
            }
        }

        let fault_plan = self.fault_plan.as_ref();

        loop {
            if let Some(k) = pause_at {
                if deliveries >= k {
                    let _capture_timer = self.metrics.start_timer("checkpoint.capture");
                    let snap = capture_serial(
                        n,
                        &scheduler,
                        known_ring_size,
                        max_events,
                        seq,
                        deliveries,
                        &position_deliveries,
                        &stats,
                        &links,
                        &processes,
                        &sink,
                    )?;
                    return Ok(RunPhase::Paused(Box::new(snap)));
                }
            }
            let Some(link) = links.choose() else {
                return Err(SimError::Stalled { deliveries });
            };
            if deliveries >= max_events {
                return Err(SimError::EventLimitExceeded { limit: max_events });
            }
            let mut payload = links.pop(link);
            deliveries += 1;

            // Decode link id back to (receiver, direction of travel).
            let (receiver, direction) = if link < n {
                ((link + 1) % n, Direction::Clockwise)
            } else {
                (link - n, Direction::CounterClockwise)
            };

            position_deliveries[receiver] += 1;
            let fault =
                fault_plan.and_then(|p| p.for_delivery(receiver, position_deliveries[receiver]));
            if let Some(f) = &fault {
                // The serial engine has no worker to kill; KillShard is a
                // no-op here (the sharded/threaded engines honour it).
                if let Some(c) = &f.corrupt {
                    payload = c.apply(&payload);
                }
                if f.delay_micros > 0 {
                    std::thread::sleep(std::time::Duration::from_micros(f.delay_micros));
                }
            }

            if sink.active() {
                sink.push(TraceEvent {
                    seq,
                    kind: EventKind::Deliver,
                    position: receiver,
                    direction,
                    payload: payload.clone(),
                });
                seq += 1;
            }

            ctx.reset(receiver == 0);
            processes[receiver]
                .on_message(direction, &payload, &mut ctx)
                .map_err(|source| SimError::Process { position: receiver, source })?;
            if let Some(f) = &fault {
                if f.stall {
                    // Swallow the handler's effects: the processor "hangs".
                    ctx.reset(receiver == 0);
                }
                for (d, p) in &f.inject_sends {
                    ctx.send(*d, p.clone());
                }
                if let Some(accept) = f.inject_decide {
                    ctx.decide(accept);
                }
            }
            let decision = apply_effects(
                &mut ctx, receiver, n, topology, &mut links, &mut stats, &mut sink, &mut seq,
            )?;
            if let Some(d) = decision {
                stats.deliveries = deliveries;
                flush_engine_metrics(&self.metrics, &stats, sink.ring.as_ref());
                return Ok(RunPhase::Done(Outcome {
                    decision: Some(d),
                    stats,
                    trace: sink.trace,
                    trace_ring: sink.ring,
                }));
            }
        }
    }
}

/// Folds a completed run's already-computed totals into the metrics
/// registry — one call at the `Done` boundary, zero hot-loop cost.
/// Scheduler picks equal deliveries on the event engine (every pick
/// delivers exactly one message); bit-rounds is the max over per-link
/// bit totals, the unit of the Θ(D + log n) bound in PAPERS.md.
pub(crate) fn flush_engine_metrics(metrics: &Metrics, stats: &ExecStats, ring: Option<&TraceRing>) {
    if !metrics.is_enabled() {
        return;
    }
    metrics.counter_add("engine.deliveries", stats.deliveries as u64);
    metrics.counter_add("engine.scheduler_picks", stats.deliveries as u64);
    metrics.counter_add("engine.messages", stats.message_count as u64);
    metrics.counter_add("engine.bits_sent", stats.total_bits as u64);
    metrics.gauge_max("engine.max_message_bits", stats.max_message_bits as u64);
    let bit_rounds = stats
        .clockwise_link_bits
        .iter()
        .chain(stats.counter_clockwise_link_bits.iter())
        .copied()
        .max()
        .unwrap_or(0);
    metrics.gauge_max("engine.bit_rounds", bit_rounds as u64);
    if let Some(ring) = ring {
        metrics.counter_add("trace.ring_drops", ring.dropped());
    }
}

/// Unwraps a [`RunPhase`] that cannot be `Paused` (no pause point given).
fn finished(phase: RunPhase) -> Result<Outcome, SimError> {
    match phase {
        RunPhase::Done(outcome) => Ok(outcome),
        RunPhase::Paused(_) => {
            Err(SimError::Snapshot { reason: "engine paused without a pause point".into() })
        }
    }
}

/// Captures the serial engine's complete state at a delivery boundary.
#[allow(clippy::too_many_arguments)]
fn capture_serial(
    n: usize,
    scheduler: &Scheduler,
    known_ring_size: bool,
    max_events: usize,
    seq: u64,
    deliveries: usize,
    position_deliveries: &[u64],
    stats: &ExecStats,
    links: &Links,
    processes: &[Box<dyn Process>],
    sink: &TraceSink,
) -> Result<EngineSnapshot, SimError> {
    let mut proc_states = Vec::with_capacity(n);
    for (i, p) in processes.iter().enumerate() {
        match p.save_state() {
            Some(bytes) => proc_states.push(bytes),
            None => {
                return Err(SimError::Snapshot {
                    reason: format!(
                        "protocol does not implement save_state (processor {i}); \
                         checkpointing requires opt-in"
                    ),
                });
            }
        }
    }
    Ok(EngineSnapshot {
        version: SNAPSHOT_VERSION,
        n,
        scheduler: scheduler.clone(),
        known_ring_size,
        max_events,
        seq,
        deliveries,
        position_deliveries: position_deliveries.to_vec(),
        stats: stats.clone(),
        links: (0..links.backlog.len()).map(|link| links.queue_contents(link)).collect(),
        rng: links.index.export_rng(),
        processes: proc_states,
        trace: sink.trace.clone(),
        ring: sink.ring.clone(),
    })
}

/// The link queues plus the scheduler's incrementally maintained view of
/// them, laid out structure-of-arrays.
///
/// The hot fields — each link's head sequence number, backlog, and head
/// payload — live in three dense parallel vectors, so the per-delivery
/// path (`choose` → `pop` → `push`) touches a handful of cache lines
/// even at n = 10⁶, instead of hopping through per-link `VecDeque`
/// headers. Links holding more than one message (rare outside burst
/// workloads) spill their tail into a side table keyed by link id.
///
/// Every queue mutation flows through [`push`](Links::push) /
/// [`pop`](Links::pop) so the [`LinkIndex`] stays exactly in sync; the
/// occupancy count and the xor of non-empty link ids make the unique
/// non-empty link recoverable in O(1) for the single-link fast path —
/// the common case for unidirectional one-pass protocols, where at most
/// one message is ever in flight.
///
/// Link ids: 0..n are clockwise links (i → i+1 mod n); n..2n are
/// counter-clockwise links (i+1 → i, stored at n + i).
struct Links {
    /// Sequence number of each link's head message; meaningful only
    /// while `backlog[link] > 0`.
    head_seq: Vec<u64>,
    /// Queued-message count per link.
    backlog: Vec<u32>,
    /// Payload of each link's head message; an empty placeholder while
    /// the link is empty.
    head_payload: Vec<BitString>,
    /// Tail entries (everything behind the head) for links with backlog
    /// ≥ 2, front first.
    overflow: BTreeMap<usize, VecDeque<(u64, BitString)>>,
    index: Box<dyn LinkIndex>,
    /// Number of non-empty links.
    occupied: usize,
    /// Xor of the ids of all non-empty links; equals the unique non-empty
    /// link's id whenever `occupied == 1`.
    id_xor: usize,
}

impl Links {
    fn new(n: usize, index: Box<dyn LinkIndex>) -> Self {
        Self {
            head_seq: vec![0; 2 * n],
            backlog: vec![0; 2 * n],
            head_payload: vec![BitString::new(); 2 * n],
            overflow: BTreeMap::new(),
            index,
            occupied: 0,
            id_xor: 0,
        }
    }

    fn push(&mut self, link: usize, seq: u64, payload: BitString) {
        if self.backlog[link] == 0 {
            self.head_seq[link] = seq;
            self.head_payload[link] = payload;
            self.occupied += 1;
            self.id_xor ^= link;
        } else {
            self.overflow.entry(link).or_default().push_back((seq, payload));
        }
        self.backlog[link] += 1;
        self.index.on_push(link, seq, self.backlog[link] as usize);
    }

    /// The scheduling policy's pick, or `None` when the ring is quiescent.
    /// Skips the index when only one link is non-empty.
    fn choose(&mut self) -> Option<usize> {
        match self.occupied {
            0 => None,
            1 => {
                self.index.on_trivial_choose();
                Some(self.id_xor)
            }
            _ => Some(self.index.choose()),
        }
    }

    fn pop(&mut self, link: usize) -> BitString {
        let backlog = self.backlog[link].checked_sub(1).expect("chosen link non-empty");
        self.backlog[link] = backlog;
        if backlog == 0 {
            self.occupied -= 1;
            self.id_xor ^= link;
            self.index.on_pop(link, None, 0);
            std::mem::take(&mut self.head_payload[link])
        } else {
            let tail = self.overflow.get_mut(&link).expect("backlog ≥ 2 spills to overflow");
            let (next_seq, next_payload) = tail.pop_front().expect("overflow entry non-empty");
            if tail.is_empty() {
                self.overflow.remove(&link);
            }
            let payload = std::mem::replace(&mut self.head_payload[link], next_payload);
            self.head_seq[link] = next_seq;
            self.index.on_pop(link, Some(next_seq), backlog as usize);
            payload
        }
    }

    /// Front-to-back contents of `link`, for checkpoint capture.
    fn queue_contents(&self, link: usize) -> Vec<(u64, BitString)> {
        if self.backlog[link] == 0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.backlog[link] as usize);
        out.push((self.head_seq[link], self.head_payload[link].clone()));
        if let Some(tail) = self.overflow.get(&link) {
            out.extend(tail.iter().cloned());
        }
        out
    }
}

/// Applies a handler's buffered sends/decision, draining the context for
/// reuse. Returns the decision if the leader made one.
#[allow(clippy::too_many_arguments)]
fn apply_effects(
    ctx: &mut Context,
    position: usize,
    n: usize,
    topology: Topology,
    links: &mut Links,
    stats: &mut ExecStats,
    sink: &mut TraceSink,
    seq: &mut u64,
) -> Result<Option<bool>, SimError> {
    let decision = ctx.take_decision();
    if decision.is_some() && position != 0 {
        return Err(SimError::FollowerDecided { position });
    }
    for (direction, payload) in ctx.drain_outbox() {
        if !topology.allows(position, direction, n) {
            return Err(SimError::IllegalSend { position, direction });
        }
        stats.record_send(position, direction, payload.len());
        if sink.active() {
            sink.push(TraceEvent {
                seq: *seq,
                kind: EventKind::Send,
                position,
                direction,
                payload: payload.clone(),
            });
        }
        let link = match direction {
            Direction::Clockwise => position,
            // p_i sending counter-clockwise feeds the queue stored at n + (i-1 mod n).
            Direction::CounterClockwise => n + (position + n - 1) % n,
        };
        links.push(link, *seq, payload);
        *seq += 1;
    }
    Ok(decision)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ProcessResult, Protocol};
    use ringleader_automata::{Alphabet, Symbol};

    /// Forwards any message onward; used as the default follower.
    struct Forwarder;
    impl Process for Forwarder {
        fn on_message(
            &mut self,
            dir: Direction,
            msg: &BitString,
            ctx: &mut Context,
        ) -> ProcessResult {
            ctx.send(dir, msg.clone());
            Ok(())
        }
    }

    /// Leader sends one 3-bit message clockwise; accepts when it returns.
    struct RoundTripLeader;
    impl Process for RoundTripLeader {
        fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
            ctx.send(Direction::Clockwise, BitString::parse("101").unwrap());
            Ok(())
        }
        fn on_message(
            &mut self,
            _d: Direction,
            _m: &BitString,
            ctx: &mut Context,
        ) -> ProcessResult {
            ctx.decide(true);
            Ok(())
        }
    }

    struct RoundTrip;
    impl Protocol for RoundTrip {
        fn name(&self) -> &'static str {
            "round-trip"
        }
        fn topology(&self) -> Topology {
            Topology::Unidirectional
        }
        fn leader(&self, _input: Symbol) -> Box<dyn Process> {
            Box::new(RoundTripLeader)
        }
        fn follower(&self, _input: Symbol) -> Box<dyn Process> {
            Box::new(Forwarder)
        }
    }

    fn word(n: usize) -> Word {
        let sigma = Alphabet::binary();
        Word::from_str(&"0".repeat(n), &sigma).unwrap()
    }

    #[test]
    fn round_trip_counts_bits_per_hop() {
        for n in [1usize, 2, 3, 10, 100] {
            let outcome = RingRunner::new().run(&RoundTrip, &word(n)).unwrap();
            assert_eq!(outcome.decision, Some(true), "n={n}");
            assert_eq!(outcome.stats.total_bits, 3 * n, "n={n}");
            assert_eq!(outcome.stats.message_count, n, "n={n}");
            assert_eq!(outcome.stats.max_message_bits, 3, "n={n}");
        }
    }

    #[test]
    fn empty_ring_rejected() {
        let w = Word::new();
        assert!(matches!(RingRunner::new().run(&RoundTrip, &w), Err(SimError::EmptyRing)));
    }

    #[test]
    fn trace_records_sends_and_deliveries() {
        let mut runner = RingRunner::new();
        runner.record_trace(true);
        let outcome = runner.run(&RoundTrip, &word(3)).unwrap();
        let trace = outcome.trace.unwrap();
        // 3 sends + 3 deliveries.
        assert_eq!(trace.events().len(), 6);
        let sends = trace.events().iter().filter(|e| e.kind == EventKind::Send).count();
        assert_eq!(sends, 3);
        // Info states: every processor sent once and received once... except
        // the leader ordering (send first, then receive).
        let inputs = vec![Symbol(0); 3];
        let states = trace.info_states(&inputs);
        assert_eq!(states[0].entries.len(), 2);
        assert_eq!(states[1].entries.len(), 2);
    }

    /// Protocol violating direction rules on a unidirectional ring.
    struct BadDirection;
    impl Protocol for BadDirection {
        fn name(&self) -> &'static str {
            "bad-direction"
        }
        fn topology(&self) -> Topology {
            Topology::Unidirectional
        }
        fn leader(&self, _input: Symbol) -> Box<dyn Process> {
            struct L;
            impl Process for L {
                fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
                    ctx.send(Direction::CounterClockwise, BitString::parse("1").unwrap());
                    Ok(())
                }
                fn on_message(
                    &mut self,
                    _d: Direction,
                    _m: &BitString,
                    _c: &mut Context,
                ) -> ProcessResult {
                    Ok(())
                }
            }
            Box::new(L)
        }
        fn follower(&self, _input: Symbol) -> Box<dyn Process> {
            Box::new(Forwarder)
        }
    }

    #[test]
    fn illegal_direction_aborts() {
        let err = RingRunner::new().run(&BadDirection, &word(3)).unwrap_err();
        assert!(matches!(err, SimError::IllegalSend { position: 0, .. }));
    }

    /// A follower that (illegally) decides.
    struct RogueFollower;
    impl Protocol for RogueFollower {
        fn name(&self) -> &'static str {
            "rogue"
        }
        fn topology(&self) -> Topology {
            Topology::Unidirectional
        }
        fn leader(&self, _input: Symbol) -> Box<dyn Process> {
            Box::new(RoundTripLeader)
        }
        fn follower(&self, _input: Symbol) -> Box<dyn Process> {
            struct F;
            impl Process for F {
                fn on_message(
                    &mut self,
                    _d: Direction,
                    _m: &BitString,
                    ctx: &mut Context,
                ) -> ProcessResult {
                    ctx.decide(false);
                    Ok(())
                }
            }
            Box::new(F)
        }
    }

    #[test]
    fn follower_decision_aborts() {
        let err = RingRunner::new().run(&RogueFollower, &word(3)).unwrap_err();
        assert!(matches!(err, SimError::FollowerDecided { position: 1 }));
    }

    /// A leader that never decides and sends nothing.
    struct Silent;
    impl Protocol for Silent {
        fn name(&self) -> &'static str {
            "silent"
        }
        fn topology(&self) -> Topology {
            Topology::Unidirectional
        }
        fn leader(&self, _input: Symbol) -> Box<dyn Process> {
            struct L;
            impl Process for L {
                fn on_message(
                    &mut self,
                    _d: Direction,
                    _m: &BitString,
                    _c: &mut Context,
                ) -> ProcessResult {
                    Ok(())
                }
            }
            Box::new(L)
        }
        fn follower(&self, _input: Symbol) -> Box<dyn Process> {
            Box::new(Forwarder)
        }
    }

    #[test]
    fn quiescence_without_decision_is_stalled() {
        let err = RingRunner::new().run(&Silent, &word(3)).unwrap_err();
        assert!(matches!(err, SimError::Stalled { deliveries: 0 }));
    }

    /// A two-processor ping-pong that never terminates.
    struct Livelock;
    impl Protocol for Livelock {
        fn name(&self) -> &'static str {
            "livelock"
        }
        fn topology(&self) -> Topology {
            Topology::Bidirectional
        }
        fn leader(&self, _input: Symbol) -> Box<dyn Process> {
            struct L;
            impl Process for L {
                fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
                    ctx.send(Direction::Clockwise, BitString::parse("1").unwrap());
                    Ok(())
                }
                fn on_message(
                    &mut self,
                    d: Direction,
                    m: &BitString,
                    ctx: &mut Context,
                ) -> ProcessResult {
                    ctx.send(d, m.clone());
                    Ok(())
                }
            }
            Box::new(L)
        }
        fn follower(&self, _input: Symbol) -> Box<dyn Process> {
            Box::new(Forwarder)
        }
    }

    #[test]
    fn event_limit_stops_runaways() {
        let mut runner = RingRunner::new();
        runner.max_events(100);
        let err = runner.run(&Livelock, &word(2)).unwrap_err();
        assert!(matches!(err, SimError::EventLimitExceeded { limit: 100 }));
    }

    #[test]
    fn known_ring_size_mode_is_visible() {
        struct NProtocol;
        impl Protocol for NProtocol {
            fn name(&self) -> &'static str {
                "known-n"
            }
            fn topology(&self) -> Topology {
                Topology::Unidirectional
            }
            fn leader(&self, _input: Symbol) -> Box<dyn Process> {
                struct L;
                impl Process for L {
                    fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
                        // Decide immediately based on n: accept even sizes.
                        let n = ctx.known_ring_size().expect("runner set known_ring_size");
                        ctx.decide(n % 2 == 0);
                        Ok(())
                    }
                    fn on_message(
                        &mut self,
                        _d: Direction,
                        _m: &BitString,
                        _c: &mut Context,
                    ) -> ProcessResult {
                        Ok(())
                    }
                }
                Box::new(L)
            }
            fn follower(&self, _input: Symbol) -> Box<dyn Process> {
                Box::new(Forwarder)
            }
        }
        let mut runner = RingRunner::new();
        runner.known_ring_size(true);
        assert!(runner.run(&NProtocol, &word(4)).unwrap().accepted());
        assert!(!runner.run(&NProtocol, &word(5)).unwrap().accepted());
    }

    #[test]
    fn single_processor_ring_self_loop() {
        // n = 1: the leader's clockwise neighbour is itself.
        let outcome = RingRunner::new().run(&RoundTrip, &word(1)).unwrap();
        assert!(outcome.accepted());
        assert_eq!(outcome.stats.total_bits, 3);
    }

    #[test]
    fn bidirectional_messages_cross() {
        /// Leader probes both ways; accepts after both probes return.
        struct BothWays;
        impl Protocol for BothWays {
            fn name(&self) -> &'static str {
                "both-ways"
            }
            fn topology(&self) -> Topology {
                Topology::Bidirectional
            }
            fn leader(&self, _input: Symbol) -> Box<dyn Process> {
                struct L {
                    seen: usize,
                }
                impl Process for L {
                    fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
                        ctx.send(Direction::Clockwise, BitString::parse("10").unwrap());
                        ctx.send(Direction::CounterClockwise, BitString::parse("01").unwrap());
                        Ok(())
                    }
                    fn on_message(
                        &mut self,
                        _d: Direction,
                        _m: &BitString,
                        ctx: &mut Context,
                    ) -> ProcessResult {
                        self.seen += 1;
                        if self.seen == 2 {
                            ctx.decide(true);
                        }
                        Ok(())
                    }
                }
                Box::new(L { seen: 0 })
            }
            fn follower(&self, _input: Symbol) -> Box<dyn Process> {
                Box::new(Forwarder)
            }
        }
        for scheduler in [Scheduler::Fifo, Scheduler::Random { seed: 3 }, Scheduler::LongestQueue] {
            let mut runner = RingRunner::new();
            runner.scheduler(scheduler);
            let outcome = runner.run(&BothWays, &word(5)).unwrap();
            assert!(outcome.accepted());
            // Two probes, each crossing all 5 links once: 2 bits * 5 hops * 2 directions.
            assert_eq!(outcome.stats.total_bits, 20);
        }
    }

    #[test]
    fn line_topology_blocks_wraparound() {
        struct LineWrap;
        impl Protocol for LineWrap {
            fn name(&self) -> &'static str {
                "line-wrap"
            }
            fn topology(&self) -> Topology {
                Topology::Line
            }
            fn leader(&self, _input: Symbol) -> Box<dyn Process> {
                struct L;
                impl Process for L {
                    fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
                        // Illegal: leader's counter-clockwise link does not exist on a line.
                        ctx.send(Direction::CounterClockwise, BitString::parse("1").unwrap());
                        Ok(())
                    }
                    fn on_message(
                        &mut self,
                        _d: Direction,
                        _m: &BitString,
                        _c: &mut Context,
                    ) -> ProcessResult {
                        Ok(())
                    }
                }
                Box::new(L)
            }
            fn follower(&self, _input: Symbol) -> Box<dyn Process> {
                Box::new(Forwarder)
            }
        }
        let err = RingRunner::new().run(&LineWrap, &word(4)).unwrap_err();
        assert!(matches!(
            err,
            SimError::IllegalSend { position: 0, direction: Direction::CounterClockwise }
        ));
    }
}
