//! The processor-side API: processes, protocols, and their context.

use std::error::Error;
use std::fmt;

use ringleader_automata::Symbol;
use ringleader_bitio::{BitString, DecodeError};

use crate::{Direction, Topology};

/// Error returned by a [`Process`] handler.
///
/// In the paper's model a correct algorithm never fails; a `ProcessError`
/// therefore signals an implementation bug (malformed message, impossible
/// state) and aborts the simulation with
/// [`SimError::Process`](crate::SimError::Process).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProcessError {
    /// A message failed to decode.
    Decode(DecodeError),
    /// The process reached a state its protocol deems impossible.
    InvalidState(String),
}

impl fmt::Display for ProcessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcessError::Decode(e) => write!(f, "message decode failed: {e}"),
            ProcessError::InvalidState(msg) => write!(f, "invalid protocol state: {msg}"),
        }
    }
}

impl Error for ProcessError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProcessError::Decode(e) => Some(e),
            ProcessError::InvalidState(_) => None,
        }
    }
}

impl From<DecodeError> for ProcessError {
    fn from(e: DecodeError) -> Self {
        ProcessError::Decode(e)
    }
}

/// Result type of [`Process`] handlers.
pub type ProcessResult = Result<(), ProcessError>;

/// Everything a processor may do during one event handler invocation.
///
/// A `Context` is handed to [`Process::on_start`] and
/// [`Process::on_message`]; sends and decisions are buffered and applied
/// by the engine when the handler returns.
#[derive(Debug)]
pub struct Context {
    outbox: Vec<(Direction, BitString)>,
    decision: Option<bool>,
    known_ring_size: Option<usize>,
    is_leader: bool,
}

impl Context {
    pub(crate) fn new(is_leader: bool, known_ring_size: Option<usize>) -> Self {
        Self { outbox: Vec::new(), decision: None, known_ring_size, is_leader }
    }

    /// Creates a context not owned by the engine, for adapter protocols
    /// that wrap an inner [`Process`] (e.g. the Theorem 5 cut-link
    /// transformation) and for unit-testing processes in isolation.
    ///
    /// Collect the buffered effects afterwards with
    /// [`into_effects`](Context::into_effects).
    #[must_use]
    pub fn detached(is_leader: bool, known_ring_size: Option<usize>) -> Self {
        Self::new(is_leader, known_ring_size)
    }

    /// Consumes the context, returning the buffered `(direction, message)`
    /// sends in order and the decision, if one was made.
    #[must_use]
    pub fn into_effects(self) -> (Vec<(Direction, BitString)>, Option<bool>) {
        (self.outbox, self.decision)
    }

    /// Queues `message` for the neighbour in `direction`.
    ///
    /// Whether the direction is legal depends on the [`Topology`]; an
    /// illegal send aborts the run with
    /// [`SimError::IllegalSend`](crate::SimError::IllegalSend) when the
    /// handler returns.
    pub fn send(&mut self, direction: Direction, message: BitString) {
        self.outbox.push((direction, message));
    }

    /// Records the leader's accept/reject decision and terminates the run.
    ///
    /// Calling this from a non-leader processor aborts the run with
    /// [`SimError::FollowerDecided`](crate::SimError::FollowerDecided):
    /// in the paper's model only the leader accepts or rejects the pattern.
    pub fn decide(&mut self, accept: bool) {
        self.decision = Some(accept);
    }

    /// The ring size, in the paper's Note 7.4 "known `n`" mode; `None` in
    /// the default unknown-size model.
    #[must_use]
    pub fn known_ring_size(&self) -> Option<usize> {
        self.known_ring_size
    }

    /// Whether this processor is the leader.
    #[must_use]
    pub fn is_leader(&self) -> bool {
        self.is_leader
    }

    pub(crate) fn take(self) -> (Vec<(Direction, BitString)>, Option<bool>) {
        (self.outbox, self.decision)
    }

    /// Clears the buffered effects for the next event handler, keeping the
    /// outbox's allocation. The engine reuses one context per run (the
    /// ring size mode never changes mid-run, so only the leader flag is
    /// refreshed).
    pub(crate) fn reset(&mut self, is_leader: bool) {
        self.outbox.clear();
        self.decision = None;
        self.is_leader = is_leader;
    }

    /// Removes and returns the buffered decision.
    pub(crate) fn take_decision(&mut self) -> Option<bool> {
        self.decision.take()
    }

    /// Drains the buffered sends in order, leaving the outbox's capacity
    /// in place for the next event.
    pub(crate) fn drain_outbox(&mut self) -> std::vec::Drain<'_, (Direction, BitString)> {
        self.outbox.drain(..)
    }
}

/// One processor's algorithm: a state machine driven by message events.
///
/// The simulator creates one `Process` per processor via the factories on
/// [`Protocol`], calls [`on_start`](Process::on_start) exactly once on the
/// leader, and then [`on_message`](Process::on_message) for every message
/// delivered to the processor.
pub trait Process: Send {
    /// Invoked once on the leader before any message flows.
    ///
    /// The default does nothing, which suits follower-only types.
    ///
    /// # Errors
    ///
    /// Implementations return [`ProcessError`] to signal protocol bugs;
    /// the engine aborts the run.
    fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
        let _ = ctx;
        Ok(())
    }

    /// Invoked when a message travelling in `direction` arrives.
    ///
    /// A message travelling [`Direction::Clockwise`] arrived from the
    /// counter-clockwise neighbour; forwarding it onward means sending
    /// with the same `direction`.
    ///
    /// # Errors
    ///
    /// Implementations return [`ProcessError`] to signal protocol bugs;
    /// the engine aborts the run.
    fn on_message(
        &mut self,
        direction: Direction,
        message: &BitString,
        ctx: &mut Context,
    ) -> ProcessResult;

    /// Serializes this process's mutable state for a checkpoint, or `None`
    /// if the protocol does not support checkpointing.
    ///
    /// Only state that changes across events belongs here; construction
    /// parameters (the input letter, protocol configuration) are rebuilt
    /// from the [`Protocol`] factories on restore. A process whose entire
    /// state is its construction parameters returns `Some(Vec::new())`.
    ///
    /// The default returns `None`, which makes
    /// [`RingRunner::run_until`](crate::RingRunner::run_until) fail with
    /// [`SimError::Snapshot`](crate::SimError::Snapshot) — protocols opt
    /// in to crash safety explicitly.
    fn save_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores state previously produced by
    /// [`save_state`](Process::save_state) into a freshly constructed
    /// process.
    ///
    /// # Errors
    ///
    /// Returns [`ProcessError::InvalidState`] when the bytes do not match
    /// what this protocol saves (the default, for protocols that never
    /// save).
    fn load_state(&mut self, bytes: &[u8]) -> ProcessResult {
        let _ = bytes;
        Err(ProcessError::InvalidState("protocol does not support checkpoint restore".into()))
    }
}

/// A distributed algorithm: factories for the leader and follower
/// processes plus the topology it runs on.
///
/// The single [`follower`](Protocol::follower) factory enforces the
/// paper's model requirement that *all processors other than the leader
/// execute the same algorithm* (parameterized only by their input letter).
///
/// Protocols are `Send + Sync`: a protocol value is an immutable factory
/// (all per-run state lives in the [`Process`] instances it creates), so
/// the parallel sweep executor can share one protocol across worker
/// threads.
pub trait Protocol: Send + Sync {
    /// Short name used in reports and benches.
    fn name(&self) -> &'static str;

    /// The topology this protocol requires.
    fn topology(&self) -> Topology;

    /// Creates the leader's process. `input` is the leader's letter `σ₁`.
    fn leader(&self, input: Symbol) -> Box<dyn Process>;

    /// Creates a follower's process. `input` is that processor's letter.
    fn follower(&self, input: Symbol) -> Box<dyn Process>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_buffers_sends_and_decision() {
        let mut ctx = Context::new(true, None);
        ctx.send(Direction::Clockwise, BitString::parse("101").unwrap());
        ctx.send(Direction::CounterClockwise, BitString::parse("0").unwrap());
        ctx.decide(true);
        let (outbox, decision) = ctx.take();
        assert_eq!(outbox.len(), 2);
        assert_eq!(outbox[0].0, Direction::Clockwise);
        assert_eq!(outbox[0].1.len(), 3);
        assert_eq!(decision, Some(true));
    }

    #[test]
    fn context_exposes_mode() {
        let ctx = Context::new(false, Some(12));
        assert!(!ctx.is_leader());
        assert_eq!(ctx.known_ring_size(), Some(12));
        let ctx = Context::new(true, None);
        assert!(ctx.is_leader());
        assert_eq!(ctx.known_ring_size(), None);
    }

    #[test]
    fn process_error_from_decode_error() {
        let e: ProcessError = DecodeError::UnexpectedEnd { at: 0, needed: 1 }.into();
        assert!(matches!(e, ProcessError::Decode(_)));
        assert!(e.to_string().contains("decode failed"));
        use std::error::Error as _;
        assert!(e.source().is_some());
    }
}
