//! The Mansour & Zaks algorithms: distributed pattern recognition on a
//! ring with a leader, measured in bits.
//!
//! This crate is the paper's primary contribution, implemented as runnable
//! protocols for the [`ringleader_sim`] ring:
//!
//! | module | paper | algorithm |
//! |--------|-------|-----------|
//! | [`onepass`] | Thm 1 | [`DfaOnePass`]: forward the DFA state, `⌈log│Q│⌉` bits/hop, `O(n)` total |
//! | [`collect`] | §1 | [`CollectAll`]: the universal `O(n²)` baseline — ship the whole prefix |
//! | [`counting`] | §7, §8 | [`CountRingSize`]: leader learns `n` in `Θ(n log n)` bits |
//! | [`anbncn`] | Note 7.2 | [`ThreeCounters`]: `0ⁿ1ⁿ2ⁿ` in `Θ(n log n)` bits |
//! | [`wcw`] | Note 7.1 | [`WcWPrefixForward`]: `wcw` in `Θ(n²)` bits (matching its lower bound) |
//! | [`hierarchy`] | Note 7.3 | [`LgRecognizer`]: `L_g` in `Θ(g(n))` bits |
//! | [`multipass`] | Note 7.5 | [`TwoPassParity`] vs [`OnePassParity`]: the pass/bit trade-off, exact |
//! | [`known_n`] | Note 7.4 | [`LengthPredicateKnownN`]: non-regular in `O(n)` bits when `n` is known |
//! | [`bidir`] | Thm 6/7 | [`BidirMeetInMiddle`]: genuinely bidirectional `O(n)` regular recognition |
//! | [`reroute`] | Thm 5 | [`CutLinkAdapter`]: ring→line rerouting with the ≤4× bit bound |
//! | [`graph`] | Thm 2 | [`MessageGraphExplorer`]: extract the DFA hiding inside any `O(n)` one-pass algorithm |
//! | [`infostate`] | Thm 4/5 | information-state census behind the `Ω(n log n)` lower bound |
//!
//! # Examples
//!
//! Theorem 1 end to end — regular recognition in `⌈log│Q│⌉` bits per hop:
//!
//! ```rust
//! # use ringleader_core::DfaOnePass;
//! # use ringleader_langs::DfaLanguage;
//! # use ringleader_automata::{Alphabet, Word};
//! # use ringleader_sim::RingRunner;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sigma = Alphabet::from_chars("ab")?;
//! let lang = DfaLanguage::from_regex("(ab)*", &sigma)?;
//! let protocol = DfaOnePass::new(&lang);
//! let word = Word::from_str("abababab", &sigma)?;
//! let outcome = RingRunner::new().run(&protocol, &word)?;
//! assert!(outcome.accepted());
//! // 3 minimized states → 2 bits per message, 8 messages.
//! assert_eq!(outcome.stats.total_bits, 16);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anbncn;
pub mod bidir;
pub mod collect;
pub mod counting;
pub mod dyck;
pub mod graph;
pub mod hierarchy;
pub mod infostate;
pub mod known_n;
pub mod multipass;
pub mod onepass;
pub mod reroute;
pub mod stateless;
pub mod wcw;

pub use anbncn::ThreeCounters;
pub use bidir::BidirMeetInMiddle;
pub use collect::CollectAll;
pub use counting::{CountRingSize, CounterEncoding, LengthPredicate};
pub use dyck::DyckCounter;
pub use graph::{GraphOutcome, MessageGraphExplorer, OnePassRule};
pub use hierarchy::LgRecognizer;
pub use infostate::{analyze_info_states, InfoStateReport};
pub use known_n::LengthPredicateKnownN;
pub use multipass::{OnePassParity, TwoPassParity};
pub use onepass::DfaOnePass;
pub use reroute::CutLinkAdapter;
pub use stateless::StatelessTwoPass;
pub use wcw::WcWPrefixForward;
