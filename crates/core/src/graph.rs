//! Theorem 2: the message graph of an `O(n)`-bit one-pass algorithm *is*
//! a finite automaton.
//!
//! The proof of Theorem 2 builds a directed edge-labelled graph `G` whose
//! vertices are the algorithm's messages, with an edge `mᵢ --σ--> mⱼ`
//! whenever a processor holding `σ` that receives `mᵢ` sends `mⱼ`. If the
//! algorithm uses `O(n)` bits the reachable graph must be finite (else
//! Kőnig's lemma yields an infinite simple path = rings forcing
//! `Ω(n log n)` bits), and the finite graph "clearly represents a state
//! diagram of a finite automaton that recognizes L".
//!
//! [`MessageGraphExplorer`] runs that construction mechanically on any
//! [`OnePassRule`]: breadth-first exploration of reachable messages,
//! emitting either the extracted [`Dfa`] (finite case — Theorem 1-style
//! algorithms) or the discovery-per-depth growth profile (budget-exceeded
//! case — counter algorithms, whose message set is infinite exactly as the
//! theorem predicts).

// detlint: allow(nondet-hash-iter): lookup-only intern table; BitString has no Ord
use std::collections::HashMap;

use ringleader_automata::{Alphabet, Dfa, StateId, Symbol};
use ringleader_bitio::BitString;

/// A one-pass unidirectional algorithm in look-up-table form: what the
/// leader sends first, what a follower holding `σ` sends on receiving `m`,
/// and how the leader decides on the message that returns.
///
/// This is the paper's abstraction of a one-pass algorithm (§2: "we assume
/// that A is implemented by a look-up table"); the ring protocols in this
/// crate implement it alongside [`Protocol`](ringleader_sim::Protocol) so
/// the Theorem 2 construction can inspect them.
pub trait OnePassRule: Send + Sync {
    /// The input alphabet.
    fn alphabet(&self) -> Alphabet;

    /// The message the leader sends given its letter (the edge `v₀ --σ--> m`).
    fn initial(&self, letter: Symbol) -> BitString;

    /// The message a follower holding `letter` sends upon receiving
    /// `incoming` (the edge `mᵢ --σ--> mⱼ`).
    fn next(&self, incoming: &BitString, letter: Symbol) -> BitString;

    /// The leader's decision on the message completing the pass.
    fn accept(&self, final_message: &BitString) -> bool;

    /// Whether the empty word is in the language (used only to complete
    /// the extracted DFA; a ring always has `n ≥ 1`).
    fn accept_empty(&self) -> bool {
        false
    }
}

/// Result of exploring a one-pass algorithm's message graph.
#[derive(Debug, Clone)]
pub enum GraphOutcome {
    /// The reachable message graph closed within budget: the algorithm
    /// uses finitely many messages and this automaton recognizes its
    /// language (Theorem 2's conclusion).
    Finite {
        /// The extracted automaton. State 0 is the virtual start `v₀`;
        /// the remaining states are the distinct messages.
        dfa: Dfa,
        /// Number of distinct messages discovered.
        distinct_messages: usize,
    },
    /// Exploration exceeded the budget: evidence of an infinite message
    /// set (the non-regular case — Corollary 1(a)).
    Exceeded {
        /// The exploration budget that was exhausted.
        budget: usize,
        /// Cumulative distinct messages after each BFS depth — the growth
        /// trajectory (e.g. linear for a counting pass).
        growth: Vec<usize>,
    },
}

/// Runs the Theorem 2 construction on a [`OnePassRule`].
///
/// # Examples
///
/// ```rust
/// # use ringleader_core::{DfaOnePass, MessageGraphExplorer, GraphOutcome};
/// # use ringleader_langs::DfaLanguage;
/// # use ringleader_automata::Alphabet;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sigma = Alphabet::from_chars("ab")?;
/// let lang = DfaLanguage::from_regex("(a|b)*abb", &sigma)?;
/// let proto = DfaOnePass::new(&lang);
/// match MessageGraphExplorer::new(10_000).explore(&proto) {
///     GraphOutcome::Finite { dfa, .. } => {
///         assert!(dfa.equivalent(lang.dfa())?); // the graph IS the language
///     }
///     GraphOutcome::Exceeded { .. } => unreachable!("DFA protocols are finite"),
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MessageGraphExplorer {
    budget: usize,
}

impl MessageGraphExplorer {
    /// Creates an explorer that gives up after discovering `budget`
    /// distinct messages.
    #[must_use]
    pub fn new(budget: usize) -> Self {
        Self { budget }
    }

    /// Explores the reachable message graph of `rule`.
    #[must_use]
    pub fn explore(&self, rule: &dyn OnePassRule) -> GraphOutcome {
        let alphabet = rule.alphabet();
        let k = alphabet.len();

        // State 0 is v0; messages get states 1.. in discovery order.
        // detlint: allow(nondet-hash-iter): never iterated; ids come from discovery order
        let mut index: HashMap<BitString, usize> = HashMap::new();
        let mut messages: Vec<BitString> = Vec::new();
        let mut transitions: Vec<Vec<usize>> = vec![Vec::with_capacity(k)];
        let mut growth = Vec::new();

        // Depth 0 frontier: v0's successors.
        let mut frontier: Vec<usize> = Vec::new();
        for s in alphabet.symbols() {
            let m = rule.initial(s);
            let id = intern(&mut index, &mut messages, &mut transitions, k, m, &mut frontier);
            transitions[0].push(id);
        }
        growth.push(messages.len());

        let mut current = std::mem::take(&mut frontier);
        while !current.is_empty() {
            if messages.len() > self.budget {
                return GraphOutcome::Exceeded { budget: self.budget, growth };
            }
            for &id in &current {
                for s in alphabet.symbols() {
                    let m = rule.next(&messages[id - 1], s);
                    let to =
                        intern(&mut index, &mut messages, &mut transitions, k, m, &mut frontier);
                    transitions[id].push(to);
                }
            }
            growth.push(messages.len());
            current = std::mem::take(&mut frontier);
        }

        // Assemble the DFA: v0 + one state per message.
        let count = messages.len() + 1;
        let accepting: Vec<bool> = std::iter::once(rule.accept_empty())
            .chain(messages.iter().map(|m| rule.accept(m)))
            .collect();
        let dfa =
            Dfa::from_fn(alphabet, count, 0, |q| accepting[q], |q, s| transitions[q][s.index()])
                .expect("graph indices are dense and in range");
        GraphOutcome::Finite { dfa, distinct_messages: messages.len() }
    }
}

/// Interns a message, enqueueing it on first sight. Returns its state id.
fn intern(
    // detlint: allow(nondet-hash-iter): lookup-only (see `explore`)
    index: &mut HashMap<BitString, usize>,
    messages: &mut Vec<BitString>,
    transitions: &mut Vec<Vec<usize>>,
    k: usize,
    message: BitString,
    frontier: &mut Vec<usize>,
) -> usize {
    if let Some(&id) = index.get(&message) {
        return id;
    }
    messages.push(message.clone());
    let id = messages.len(); // v0 occupies 0
    index.insert(message, id);
    transitions.push(Vec::with_capacity(k));
    frontier.push(id);
    id
}

/// Extracts the [`StateId`]-typed transition target (helper for rule
/// implementations).
#[doc(hidden)]
pub fn state_target(dfa: &Dfa, q: StateId, s: Symbol) -> StateId {
    dfa.step(q, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CountRingSize, DfaOnePass, OnePassParity, ThreeCounters, WcWPrefixForward};
    use ringleader_langs::{regular_corpus, DfaLanguage, Language};

    #[test]
    fn dfa_protocols_close_and_reproduce_their_language() {
        for lang in regular_corpus() {
            let proto = DfaOnePass::new(&lang);
            match MessageGraphExplorer::new(1000).explore(&proto) {
                GraphOutcome::Finite { dfa, distinct_messages } => {
                    assert!(
                        dfa.equivalent(lang.dfa()).unwrap(),
                        "extracted automaton differs for {}",
                        lang.name()
                    );
                    // The message set is the reachable state set.
                    assert!(distinct_messages <= lang.dfa().state_count());
                }
                GraphOutcome::Exceeded { .. } => {
                    panic!("{} has a finite message graph", lang.name())
                }
            }
        }
    }

    #[test]
    fn extracted_dfa_minimizes_to_the_minimal_automaton() {
        let sigma = ringleader_automata::Alphabet::from_chars("ab").unwrap();
        let lang = DfaLanguage::from_regex("(a|b)*abb", &sigma).unwrap();
        let proto = DfaOnePass::new(&lang);
        let GraphOutcome::Finite { dfa, .. } = MessageGraphExplorer::new(100).explore(&proto)
        else {
            panic!("finite expected");
        };
        assert_eq!(dfa.minimized().state_count(), lang.dfa().state_count());
    }

    #[test]
    fn one_pass_parity_closes_with_exponential_message_count() {
        // k=2: count mod 3 × 8 parity vectors... reachable subset; finite
        // but visibly larger than the two-pass protocol's per-pass tables.
        let proto = OnePassParity::new(2);
        match MessageGraphExplorer::new(100_000).explore(&proto) {
            GraphOutcome::Finite { dfa, distinct_messages } => {
                assert!(distinct_messages >= 12, "got {distinct_messages}");
                assert!(dfa.state_count() > 12);
            }
            GraphOutcome::Exceeded { .. } => panic!("one-pass parity is a finite automaton"),
        }
    }

    #[test]
    fn counting_protocol_graph_diverges_linearly() {
        let proto = CountRingSize::probe();
        match MessageGraphExplorer::new(500).explore(&proto) {
            GraphOutcome::Finite { .. } => panic!("counting uses infinitely many messages"),
            GraphOutcome::Exceeded { budget, growth } => {
                assert_eq!(budget, 500);
                // Discoveries per depth are constant (one new counter value
                // per depth): cumulative growth is linear.
                let deltas: Vec<usize> = growth.windows(2).map(|w| w[1] - w[0]).collect();
                assert!(deltas.iter().all(|&d| d == 1), "{deltas:?}");
            }
        }
    }

    #[test]
    fn three_counters_graph_diverges_polynomially() {
        let proto = ThreeCounters::new();
        match MessageGraphExplorer::new(2000).explore(&proto) {
            GraphOutcome::Finite { .. } => panic!("three-counters uses unbounded counters"),
            GraphOutcome::Exceeded { growth, .. } => {
                // Messages at depth d encode count-triples summing to d+1:
                // discoveries grow with depth (superlinear cumulative).
                let deltas: Vec<usize> = growth.windows(2).map(|w| w[1] - w[0]).collect();
                assert!(deltas.last().unwrap() > deltas.first().unwrap());
            }
        }
    }

    #[test]
    fn wcw_graph_diverges_exponentially() {
        let proto = WcWPrefixForward::new();
        match MessageGraphExplorer::new(5000).explore(&proto) {
            GraphOutcome::Finite { .. } => panic!("wcw carries unbounded prefixes"),
            GraphOutcome::Exceeded { growth, .. } => {
                // Prefix-carrying messages double per depth before the
                // separator: growth must be clearly superlinear.
                let n = growth.len();
                assert!(n >= 3);
                assert!(growth[n - 1] - growth[n - 2] > growth[1] - growth[0]);
            }
        }
    }
}
