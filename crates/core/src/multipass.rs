//! Note 7.5: the pass/bit trade-off for regular languages.
//!
//! Over `Σ = {σ₀, …, σ_{2^k−1}}` take
//! `L = { w : σ_{|w| mod (2^k−1)} appears an even number of times in w }`.
//!
//! * **Two passes** ([`TwoPassParity`]): pass 1 computes `|w| mod (2^k−1)`
//!   with `k`-bit messages; pass 2 broadcasts the designated letter and
//!   threads a single parity bit — `k+1` bits per message. Total exactly
//!   `(2k+1)·n` bits.
//! * **One pass** ([`OnePassParity`]): without knowing the designated
//!   letter in advance, the single message must track the parity of
//!   *every* candidate letter concurrently plus the running length:
//!   `k + 2^k − 1` bits per message, total `(k + 2^k − 1)·n`.
//!
//! The gap is exponential in `k` — the paper's point that collapsing
//! passes can square the message alphabet ("if a regular language can be
//! recognized with `cn` bits in any number of passes, one pass suffices
//! with `2^c·n` bits").
//!
//! Both protocols recognize exactly
//! [`TradeoffLanguage`], which the
//! tests verify against each other and against ground truth.

use ringleader_automata::Symbol;
use ringleader_bitio::{BitReader, BitString, BitWriter};
use ringleader_langs::{Language, TradeoffLanguage};
use ringleader_sim::{Context, Direction, Process, ProcessResult, Protocol, Topology};

/// The two-pass recognizer: `(2k+1)·n` bits.
///
/// # Examples
///
/// ```rust
/// # use ringleader_core::TwoPassParity;
/// # use ringleader_langs::Language;
/// # use ringleader_automata::Word;
/// # use ringleader_sim::RingRunner;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let proto = TwoPassParity::new(2);
/// // |w| = 4 → designated letter index 4 mod 3 = 1 ('B'); "ABBA" has two.
/// let w = Word::from_str("ABBA", proto.language().alphabet())?;
/// let outcome = RingRunner::new().run(&proto, &w)?;
/// assert!(outcome.accepted());
/// assert_eq!(outcome.stats.total_bits, proto.predicted_bits(4)); // (2k+1)n = 20
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TwoPassParity {
    language: TradeoffLanguage,
    k: u32,
}

impl TwoPassParity {
    /// Builds the protocol for the family member `k` (alphabet `2^k`).
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside `1..=5` (see [`TradeoffLanguage::new`]).
    #[must_use]
    pub fn new(k: u32) -> Self {
        Self { language: TradeoffLanguage::new(k), k }
    }

    /// The language being recognized.
    #[must_use]
    pub fn language(&self) -> &TradeoffLanguage {
        &self.language
    }

    /// Exact bit complexity: `(2k+1)·n`.
    #[must_use]
    pub fn predicted_bits(&self, n: usize) -> usize {
        (2 * self.k as usize + 1) * n
    }
}

impl Protocol for TwoPassParity {
    fn name(&self) -> &'static str {
        "two-pass-parity"
    }

    fn topology(&self) -> Topology {
        Topology::Unidirectional
    }

    fn leader(&self, input: Symbol) -> Box<dyn Process> {
        Box::new(TwoPassLeader {
            k: self.k,
            modulus: self.language.modulus() as u64,
            input,
            pass: 0,
        })
    }

    fn follower(&self, input: Symbol) -> Box<dyn Process> {
        Box::new(TwoPassFollower {
            k: self.k,
            modulus: self.language.modulus() as u64,
            input,
            seen: 0,
        })
    }
}

struct TwoPassLeader {
    k: u32,
    modulus: u64,
    input: Symbol,
    pass: u8,
}

impl Process for TwoPassLeader {
    fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
        // Pass 1: length counter mod (2^k − 1), k bits. Counts this
        // processor, so it starts at 1 mod M.
        let mut w = BitWriter::new();
        w.write_bits(1 % self.modulus, self.k);
        ctx.send(Direction::Clockwise, w.finish());
        self.pass = 1;
        Ok(())
    }

    fn on_message(&mut self, _dir: Direction, msg: &BitString, ctx: &mut Context) -> ProcessResult {
        let mut r = BitReader::new(msg);
        if self.pass == 1 {
            // Counter returned: designated letter is n mod (2^k − 1).
            let designated = r.read_bits(self.k)?;
            let parity = u64::from(self.input.index() as u64 == designated);
            let mut w = BitWriter::new();
            w.write_bits(designated, self.k);
            w.write_bits(parity, 1);
            ctx.send(Direction::Clockwise, w.finish());
            self.pass = 2;
        } else {
            let _designated = r.read_bits(self.k)?;
            let parity = r.read_bits(1)?;
            ctx.decide(parity == 0);
        }
        Ok(())
    }
}

struct TwoPassFollower {
    k: u32,
    modulus: u64,
    input: Symbol,
    seen: u32,
}

impl Process for TwoPassFollower {
    fn on_message(&mut self, _dir: Direction, msg: &BitString, ctx: &mut Context) -> ProcessResult {
        self.seen += 1;
        let mut r = BitReader::new(msg);
        let out = if self.seen == 1 {
            // Pass 1: bump the length counter mod M.
            let count = r.read_bits(self.k)?;
            let mut w = BitWriter::new();
            w.write_bits((count + 1) % self.modulus, self.k);
            w.finish()
        } else {
            // Pass 2: thread the designated letter's parity.
            let designated = r.read_bits(self.k)?;
            let parity = r.read_bits(1)?;
            let parity = parity ^ u64::from(self.input.index() as u64 == designated);
            let mut w = BitWriter::new();
            w.write_bits(designated, self.k);
            w.write_bits(parity, 1);
            w.finish()
        };
        ctx.send(Direction::Clockwise, out);
        Ok(())
    }
}

/// The one-pass recognizer: `(k + 2^k − 1)·n` bits.
///
/// Tracks the running length mod `2^k − 1` (`k` bits) and the parity of
/// every letter that could end up designated (`2^k − 1` bits — letter
/// `σ_{2^k−1}` can never be designated, so it needs no parity).
#[derive(Debug, Clone)]
pub struct OnePassParity {
    language: TradeoffLanguage,
    k: u32,
}

impl OnePassParity {
    /// Builds the protocol for the family member `k` (alphabet `2^k`).
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside `1..=5` (see [`TradeoffLanguage::new`]).
    #[must_use]
    pub fn new(k: u32) -> Self {
        Self { language: TradeoffLanguage::new(k), k }
    }

    /// The language being recognized.
    #[must_use]
    pub fn language(&self) -> &TradeoffLanguage {
        &self.language
    }

    /// Exact bit complexity: `(k + 2^k − 1)·n`.
    #[must_use]
    pub fn predicted_bits(&self, n: usize) -> usize {
        (self.k as usize + self.language.modulus()) * n
    }

    fn modulus(&self) -> u64 {
        self.language.modulus() as u64
    }
}

/// Shared token logic: `count` mod M plus one parity bit per candidate.
fn one_pass_absorb(k: u32, modulus: u64, count: u64, parities: u64, letter: Symbol) -> (u64, u64) {
    let count = (count + 1) % modulus;
    let parities =
        if (letter.index() as u64) < modulus { parities ^ (1 << letter.index()) } else { parities };
    let _ = k;
    (count, parities)
}

impl crate::graph::OnePassRule for OnePassParity {
    fn alphabet(&self) -> ringleader_automata::Alphabet {
        self.language.alphabet().clone()
    }

    fn initial(&self, letter: Symbol) -> BitString {
        let (count, parities) = one_pass_absorb(self.k, self.modulus(), 0, 0, letter);
        let mut w = BitWriter::new();
        w.write_bits(count, self.k);
        w.write_bits(parities, self.modulus() as u32);
        w.finish()
    }

    fn next(&self, incoming: &BitString, letter: Symbol) -> BitString {
        let mut r = BitReader::new(incoming);
        let count = r.read_bits(self.k).expect("explorer feeds back our own encodings");
        let parities =
            r.read_bits(self.modulus() as u32).expect("explorer feeds back our own encodings");
        let (count, parities) = one_pass_absorb(self.k, self.modulus(), count, parities, letter);
        let mut w = BitWriter::new();
        w.write_bits(count, self.k);
        w.write_bits(parities, self.modulus() as u32);
        w.finish()
    }

    fn accept(&self, final_message: &BitString) -> bool {
        let mut r = BitReader::new(final_message);
        let count = r.read_bits(self.k).expect("explorer feeds back our own encodings");
        let parities =
            r.read_bits(self.modulus() as u32).expect("explorer feeds back our own encodings");
        (parities >> count) & 1 == 0
    }

    fn accept_empty(&self) -> bool {
        true // zero occurrences of the designated letter is even
    }
}

impl Protocol for OnePassParity {
    fn name(&self) -> &'static str {
        "one-pass-parity"
    }

    fn topology(&self) -> Topology {
        Topology::Unidirectional
    }

    fn leader(&self, input: Symbol) -> Box<dyn Process> {
        Box::new(OnePassLeader { k: self.k, modulus: self.modulus(), input })
    }

    fn follower(&self, input: Symbol) -> Box<dyn Process> {
        Box::new(OnePassFollower { k: self.k, modulus: self.modulus(), input })
    }
}

struct OnePassLeader {
    k: u32,
    modulus: u64,
    input: Symbol,
}

impl Process for OnePassLeader {
    fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
        let (count, parities) = one_pass_absorb(self.k, self.modulus, 0, 0, self.input);
        let mut w = BitWriter::new();
        w.write_bits(count, self.k);
        w.write_bits(parities, self.modulus as u32);
        ctx.send(Direction::Clockwise, w.finish());
        Ok(())
    }

    fn on_message(&mut self, _dir: Direction, msg: &BitString, ctx: &mut Context) -> ProcessResult {
        let mut r = BitReader::new(msg);
        let count = r.read_bits(self.k)?;
        let parities = r.read_bits(self.modulus as u32)?;
        // count has gone around once: it equals n mod M = designated index.
        let designated = count;
        ctx.decide((parities >> designated) & 1 == 0);
        Ok(())
    }
}

struct OnePassFollower {
    k: u32,
    modulus: u64,
    input: Symbol,
}

impl Process for OnePassFollower {
    fn on_message(&mut self, _dir: Direction, msg: &BitString, ctx: &mut Context) -> ProcessResult {
        let mut r = BitReader::new(msg);
        let count = r.read_bits(self.k)?;
        let parities = r.read_bits(self.modulus as u32)?;
        let (count, parities) = one_pass_absorb(self.k, self.modulus, count, parities, self.input);
        let mut w = BitWriter::new();
        w.write_bits(count, self.k);
        w.write_bits(parities, self.modulus as u32);
        ctx.send(Direction::Clockwise, w.finish());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ringleader_automata::Word;
    use ringleader_sim::RingRunner;

    #[test]
    fn both_protocols_match_ground_truth() {
        let mut rng = StdRng::seed_from_u64(31);
        for k in 1..=4u32 {
            let two = TwoPassParity::new(k);
            let one = OnePassParity::new(k);
            let lang = two.language().clone();
            for n in [1usize, 2, 3, 7, 15, 16, 40] {
                for want in [true, false] {
                    let Some(w) = (if want {
                        lang.positive_example(n, &mut rng)
                    } else {
                        lang.negative_example(n, &mut rng)
                    }) else {
                        continue;
                    };
                    let d2 = RingRunner::new().run(&two, &w).unwrap().accepted();
                    let d1 = RingRunner::new().run(&one, &w).unwrap().accepted();
                    assert_eq!(d2, want, "two-pass k={k} n={n}");
                    assert_eq!(d1, want, "one-pass k={k} n={n}");
                }
            }
        }
    }

    #[test]
    fn exhaustive_agreement_small_k() {
        // k = 2: alphabet {A,B,C,D}; exhaust all words up to length 5.
        let two = TwoPassParity::new(2);
        let one = OnePassParity::new(2);
        let lang = two.language().clone();
        let sigma = lang.alphabet().clone();
        for len in 1..=5usize {
            for idx in 0..4usize.pow(len as u32) {
                let mut x = idx;
                let symbols: Vec<_> = (0..len)
                    .map(|_| {
                        let s = ringleader_automata::Symbol((x % 4) as u16);
                        x /= 4;
                        s
                    })
                    .collect();
                let w = Word::from_symbols(symbols);
                let expect = lang.contains(&w);
                assert_eq!(
                    RingRunner::new().run(&two, &w).unwrap().accepted(),
                    expect,
                    "two-pass on {}",
                    w.render(&sigma)
                );
                assert_eq!(
                    RingRunner::new().run(&one, &w).unwrap().accepted(),
                    expect,
                    "one-pass on {}",
                    w.render(&sigma)
                );
            }
        }
    }

    #[test]
    fn bit_counts_match_paper_formulas_exactly() {
        let mut rng = StdRng::seed_from_u64(17);
        for k in 1..=5u32 {
            let two = TwoPassParity::new(k);
            let one = OnePassParity::new(k);
            let lang = two.language().clone();
            for n in [1usize, 5, 32, 100] {
                let w =
                    lang.positive_example(n, &mut rng).expect("positives exist at every length");
                let o2 = RingRunner::new().run(&two, &w).unwrap();
                assert_eq!(o2.stats.total_bits, (2 * k as usize + 1) * n, "two-pass k={k} n={n}");
                assert_eq!(o2.stats.message_count, 2 * n);
                let o1 = RingRunner::new().run(&one, &w).unwrap();
                assert_eq!(
                    o1.stats.total_bits,
                    (k as usize + (1 << k) - 1) * n,
                    "one-pass k={k} n={n}"
                );
                assert_eq!(o1.stats.message_count, n);
            }
        }
    }

    #[test]
    fn crossover_two_pass_wins_from_k3() {
        // (2k+1) vs (k + 2^k − 1) per processor: equal at k ≤ 2, two-pass
        // strictly cheaper from k = 3 on, exponentially so.
        for k in 1..=5u32 {
            let two_bits = 2 * k + 1;
            let one_bits = k + (1 << k) - 1;
            match k {
                1 => assert!(two_bits > one_bits),   // 3 vs 2
                2 => assert_eq!(two_bits, one_bits), // 5 vs 5
                _ => assert!(two_bits < one_bits, "k={k}"),
            }
        }
        // And the measured protocols exhibit the same crossover.
        let mut rng = StdRng::seed_from_u64(3);
        let n = 60usize;
        for k in 3..=5u32 {
            let two = TwoPassParity::new(k);
            let one = OnePassParity::new(k);
            let w = two.language().positive_example(n, &mut rng).unwrap();
            let b2 = RingRunner::new().run(&two, &w).unwrap().stats.total_bits;
            let b1 = RingRunner::new().run(&one, &w).unwrap().stats.total_bits;
            assert!(b2 < b1, "k={k}: {b2} !< {b1}");
        }
    }

    #[test]
    fn predicted_bits_match_formulas() {
        let two = TwoPassParity::new(3);
        assert_eq!(two.predicted_bits(10), 70);
        let one = OnePassParity::new(3);
        assert_eq!(one.predicted_bits(10), 100);
    }
}
