//! Ring-size counting in `Θ(n log n)` bits.
//!
//! The paper's Summary section uses "an algorithm A that counts the number
//! of processors in one pass; clearly A uses `O(n log n)` bits" as its
//! running example, and Note 7.3's recognizer spends its first phase
//! computing `n` the same way. The protocol here is that algorithm: the
//! leader launches a counter at 1; each processor increments and forwards;
//! message `i` carries the value `i` in Elias delta (`log i + O(log log i)`
//! bits), so the pass totals `Σ log i = Θ(n log n)` bits.
//!
//! [`CountRingSize`] wraps the pass into a full protocol deciding any
//! *length predicate* — which, per the paper, is also how any unary
//! ("length") language is recognized in `Θ(n log n)` bits when `n` is
//! unknown.

use std::sync::Arc;

use ringleader_automata::Symbol;
use ringleader_bitio::{codes, BitReader, BitString, BitWriter};
use ringleader_sim::{Context, Direction, Process, ProcessResult, Protocol, Topology};

/// A predicate on the ring size, decided after the counting pass.
pub type LengthPredicate = Arc<dyn Fn(usize) -> bool + Send + Sync>;

/// How the in-flight counter is written on the wire.
///
/// The paper's `Θ(n log n)` counting cost presumes a sensible encoding;
/// this enum is the ablation knob showing *how much* the encoding is part
/// of the result:
///
/// | encoding | cost of value `i` | total for the pass |
/// |----------|-------------------|--------------------|
/// | [`EliasDelta`](CounterEncoding::EliasDelta) | `log i + O(log log i)` | `Θ(n log n)` (the paper's) |
/// | [`EliasGamma`](CounterEncoding::EliasGamma) | `2⌊log i⌋ + 1` | `Θ(n log n)`, ~2× the constant |
/// | [`Unary`](CounterEncoding::Unary) | `i + 1` | `Θ(n²)` — a whole complexity tier lost |
/// | [`Fixed64`](CounterEncoding::Fixed64) | 64 | `64·n = O(n)` — but **wrong** for `n ≥ 2⁶⁴`: a capped algorithm, not a counter; kept to show why "just use a u64" is not an asymptotic answer |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CounterEncoding {
    /// Elias delta — asymptotically tight, the default.
    EliasDelta,
    /// Elias gamma — same class, double the leading constant.
    EliasGamma,
    /// Unary — demotes the pass to `Θ(n²)`.
    Unary,
    /// Fixed 64-bit field — linear total, but only correct below `2⁶⁴`.
    Fixed64,
}

impl CounterEncoding {
    /// Wire cost of one counter message holding `value`.
    #[must_use]
    pub fn cost(self, value: u64) -> usize {
        match self {
            CounterEncoding::EliasDelta => codes::elias_delta_len(value),
            CounterEncoding::EliasGamma => codes::elias_gamma_len(value),
            CounterEncoding::Unary => codes::unary_len(value),
            CounterEncoding::Fixed64 => 64,
        }
    }

    fn write(self, value: u64) -> BitString {
        let mut w = BitWriter::new();
        match self {
            CounterEncoding::EliasDelta => {
                w.write_elias_delta(value);
            }
            CounterEncoding::EliasGamma => {
                w.write_elias_gamma(value);
            }
            CounterEncoding::Unary => {
                w.write_unary(value);
            }
            CounterEncoding::Fixed64 => {
                w.write_bits(value, 64);
            }
        }
        w.finish()
    }

    fn read(self, msg: &BitString) -> Result<u64, ringleader_bitio::DecodeError> {
        let mut r = BitReader::new(msg);
        match self {
            CounterEncoding::EliasDelta => r.read_elias_delta(),
            CounterEncoding::EliasGamma => r.read_elias_gamma(),
            CounterEncoding::Unary => r.read_unary(),
            CounterEncoding::Fixed64 => r.read_bits(64),
        }
    }

    /// Exact bit total of a counting pass on a ring of `n` processors.
    #[must_use]
    pub fn predicted_pass_bits(self, n: usize) -> usize {
        (1..=n as u64).map(|i| self.cost(i)).sum()
    }
}

/// One-pass ring-size counting; accepts iff `predicate(n)`.
///
/// # Examples
///
/// ```rust
/// # use ringleader_core::CountRingSize;
/// # use ringleader_automata::{Alphabet, Word};
/// # use ringleader_sim::RingRunner;
/// # use std::sync::Arc;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Recognize {a^(2^k)}: non-regular, Θ(n log n) bits, n unknown.
/// let proto = CountRingSize::new(Arc::new(|n| n.is_power_of_two()));
/// let sigma = Alphabet::from_chars("a")?;
/// let w8 = Word::from_str(&"a".repeat(8), &sigma)?;
/// assert!(RingRunner::new().run(&proto, &w8)?.accepted());
/// let w6 = Word::from_str(&"a".repeat(6), &sigma)?;
/// assert!(!RingRunner::new().run(&proto, &w6)?.accepted());
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct CountRingSize {
    predicate: LengthPredicate,
    encoding: CounterEncoding,
}

impl CountRingSize {
    /// Builds the counting protocol for a length predicate, with the
    /// paper's Elias-delta counters.
    #[must_use]
    pub fn new(predicate: LengthPredicate) -> Self {
        Self::with_encoding(predicate, CounterEncoding::EliasDelta)
    }

    /// Builds the protocol with an explicit [`CounterEncoding`] — the
    /// ablation constructor.
    #[must_use]
    pub fn with_encoding(predicate: LengthPredicate, encoding: CounterEncoding) -> Self {
        Self { predicate, encoding }
    }

    /// A counting pass whose decision is always "accept" — useful when only
    /// the bit-complexity of the pass itself is being measured.
    #[must_use]
    pub fn probe() -> Self {
        Self::new(Arc::new(|_| true))
    }

    /// A probe with an explicit encoding (ablation benchmarks).
    #[must_use]
    pub fn probe_with_encoding(encoding: CounterEncoding) -> Self {
        Self::with_encoding(Arc::new(|_| true), encoding)
    }

    /// The wire encoding in use.
    #[must_use]
    pub fn encoding(&self) -> CounterEncoding {
        self.encoding
    }

    /// The exact bit complexity on a ring of `n` processors with the
    /// default delta encoding: `Σᵢ₌₁ⁿ |delta(i)| = Θ(n log n)`.
    #[must_use]
    pub fn predicted_bits(n: usize) -> usize {
        CounterEncoding::EliasDelta.predicted_pass_bits(n)
    }
}

impl std::fmt::Debug for CountRingSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CountRingSize").finish_non_exhaustive()
    }
}

impl Protocol for CountRingSize {
    fn name(&self) -> &'static str {
        "count-ring-size"
    }

    fn topology(&self) -> Topology {
        Topology::Unidirectional
    }

    fn leader(&self, _input: Symbol) -> Box<dyn Process> {
        Box::new(LeaderProcess { predicate: Arc::clone(&self.predicate), encoding: self.encoding })
    }

    fn follower(&self, _input: Symbol) -> Box<dyn Process> {
        Box::new(FollowerProcess { encoding: self.encoding })
    }
}

fn encode_count(value: u64) -> BitString {
    CounterEncoding::EliasDelta.write(value)
}

impl crate::graph::OnePassRule for CountRingSize {
    fn alphabet(&self) -> ringleader_automata::Alphabet {
        // The counter ignores letters; a unary alphabet keeps the message
        // graph's out-degree at 1.
        ringleader_automata::Alphabet::from_chars("a").expect("valid alphabet")
    }

    fn initial(&self, _letter: Symbol) -> BitString {
        encode_count(1)
    }

    fn next(&self, incoming: &BitString, _letter: Symbol) -> BitString {
        let count = BitReader::new(incoming)
            .read_elias_delta()
            .expect("explorer feeds back our own encodings");
        encode_count(count + 1)
    }

    fn accept(&self, final_message: &BitString) -> bool {
        let n = BitReader::new(final_message)
            .read_elias_delta()
            .expect("explorer feeds back our own encodings");
        (self.predicate)(n as usize)
    }
}

struct LeaderProcess {
    predicate: LengthPredicate,
    encoding: CounterEncoding,
}

impl Process for LeaderProcess {
    fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
        // The leader counts itself: the counter starts at 1.
        ctx.send(Direction::Clockwise, self.encoding.write(1));
        Ok(())
    }

    fn on_message(&mut self, _dir: Direction, msg: &BitString, ctx: &mut Context) -> ProcessResult {
        let n = self.encoding.read(msg)?;
        ctx.decide((self.predicate)(n as usize));
        Ok(())
    }
}

struct FollowerProcess {
    encoding: CounterEncoding,
}

impl Process for FollowerProcess {
    fn on_message(&mut self, _dir: Direction, msg: &BitString, ctx: &mut Context) -> ProcessResult {
        let count = self.encoding.read(msg)?;
        ctx.send(Direction::Clockwise, self.encoding.write(count + 1));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringleader_automata::{Alphabet, Word};
    use ringleader_sim::RingRunner;

    fn unary(n: usize) -> Word {
        Word::from_str(&"a".repeat(n), &Alphabet::from_chars("a").unwrap()).unwrap()
    }

    #[test]
    fn computes_exact_ring_size() {
        // Use a predicate that checks the exact expected n.
        for n in [1usize, 2, 3, 10, 64, 100] {
            let expected = n;
            let proto = CountRingSize::new(Arc::new(move |got| got == expected));
            assert!(RingRunner::new().run(&proto, &unary(n)).unwrap().accepted(), "n={n}");
            let wrong = CountRingSize::new(Arc::new(move |got| got == expected + 1));
            assert!(!RingRunner::new().run(&wrong, &unary(n)).unwrap().accepted(), "n={n}");
        }
    }

    #[test]
    fn bits_match_prediction_exactly() {
        for n in [1usize, 2, 7, 32, 100, 500] {
            let outcome = RingRunner::new().run(&CountRingSize::probe(), &unary(n)).unwrap();
            assert_eq!(outcome.stats.total_bits, CountRingSize::predicted_bits(n), "n={n}");
            assert_eq!(outcome.stats.message_count, n);
        }
    }

    #[test]
    fn growth_is_n_log_n_not_linear() {
        // bits(4n)/bits(n) → 4·(log 4n / log n) > 4 for n log n, = 4 for linear.
        let b = |n: usize| CountRingSize::predicted_bits(n) as f64;
        let r1 = b(4096) / b(1024);
        assert!(r1 > 4.2, "ratio {r1} should exceed 4 (superlinear)");
        // And clearly subquadratic (quadratic would give 16).
        assert!(r1 < 8.0, "ratio {r1} should be far below quadratic");
    }

    #[test]
    fn max_message_is_logarithmic() {
        let outcome = RingRunner::new().run(&CountRingSize::probe(), &unary(1000)).unwrap();
        // delta(1000) = 19 bits; far below any linear growth.
        assert_eq!(outcome.stats.max_message_bits, codes::elias_delta_len(1000));
        assert!(outcome.stats.max_message_bits < 25);
    }

    #[test]
    fn recognizes_power_of_two_lengths() {
        let proto = CountRingSize::new(Arc::new(|n| n.is_power_of_two()));
        for n in 1..=40usize {
            let accepted = RingRunner::new().run(&proto, &unary(n)).unwrap().accepted();
            assert_eq!(accepted, n.is_power_of_two(), "n={n}");
        }
    }

    #[test]
    fn every_encoding_counts_correctly() {
        for encoding in [
            CounterEncoding::EliasDelta,
            CounterEncoding::EliasGamma,
            CounterEncoding::Unary,
            CounterEncoding::Fixed64,
        ] {
            for n in [1usize, 2, 7, 40] {
                let expected = n;
                let proto =
                    CountRingSize::with_encoding(Arc::new(move |got| got == expected), encoding);
                let outcome = RingRunner::new().run(&proto, &unary(n)).unwrap();
                assert!(outcome.accepted(), "{encoding:?} n={n}");
                assert_eq!(
                    outcome.stats.total_bits,
                    encoding.predicted_pass_bits(n),
                    "{encoding:?} n={n}"
                );
            }
        }
    }

    #[test]
    fn encoding_ablation_changes_the_complexity_class() {
        // Same algorithm, different wire encodings: delta and gamma stay
        // Θ(n log n) (gamma ~2× the constant), unary collapses to Θ(n²),
        // fixed-width flattens to exactly 64n.
        let n1 = 256usize;
        let n2 = 1024usize;
        let ratio = |e: CounterEncoding| {
            e.predicted_pass_bits(n2) as f64 / e.predicted_pass_bits(n1) as f64
        };
        // n log n: ratio ≈ 4 · (10/8) = 5 for a 4x size step.
        let delta = ratio(CounterEncoding::EliasDelta);
        assert!(delta > 4.0 && delta < 6.0, "{delta}");
        let gamma = ratio(CounterEncoding::EliasGamma);
        assert!(gamma > 4.0 && gamma < 6.0, "{gamma}");
        // n²: ratio ≈ 16.
        let unary = ratio(CounterEncoding::Unary);
        assert!(unary > 14.0 && unary < 18.0, "{unary}");
        // linear: ratio = 4 exactly.
        assert_eq!(CounterEncoding::Fixed64.predicted_pass_bits(n2), 64 * n2);
        // Gamma costs measurably more than delta (the gap tends to 2×
        // like (2 log i)/(log i + 2 log log i) — slowly; ~1.24 at n=4096).
        let g = CounterEncoding::EliasGamma.predicted_pass_bits(4096) as f64;
        let d = CounterEncoding::EliasDelta.predicted_pass_bits(4096) as f64;
        assert!(g / d > 1.15 && g / d < 2.0, "{}", g / d);
    }
}
