//! Note 7.3: recognizing `L_g` in `Θ(g(n))` bits.
//!
//! The paper's algorithm: "The leader computes `n` (using `O(n log n)`
//! bits), and then determines `|x| (= ⌊g(n)/n⌋)`, and compares every
//! segment of length `|x|` with the next segment (using `O(|x|·n) =
//! O(g(n))` bits). Therefore `BIT_A(n) = O(g(n) + n log n) = O(g(n))`."
//!
//! Implementation:
//!
//! * **Phase 1** — the counting pass of
//!   [`CountRingSize`](crate::CountRingSize) (`Θ(n log n)` bits). Skipped automatically when the runner provides
//!   the ring size (the paper's Note 7.4 known-`n` mode).
//! * **Phase 2** — a sliding window of the last `m = ⌊g(n)/n⌋` letters
//!   travels once around the ring; each processor compares its letter with
//!   the window head (the letter `m` positions back). For the paper's
//!   literal `L_g` the tail `y` is exempt from checking, which requires a
//!   position counter and check limit in the message (`O(log n)` bits,
//!   absorbed by `g ≥ n log n`); for the fully-periodic variant
//!   ([`LgLanguage::fully_periodic`]) the message is just
//!   `valid + window`, giving `Θ(n·m)` bits for *every* `g` down to
//!   `g(n) = n` — that is Note 7.4's "no gap" statement.

use ringleader_automata::Symbol;
use ringleader_bitio::{BitReader, BitString, BitWriter};
use ringleader_langs::LgLanguage;
use ringleader_sim::{
    Context, Direction, Process, ProcessError, ProcessResult, Protocol, Topology,
};

/// The `L_g` recognizer (Note 7.3), with automatic known-`n` support.
///
/// # Examples
///
/// ```rust
/// # use ringleader_core::LgRecognizer;
/// # use ringleader_langs::{GrowthFunction, Language, LgLanguage};
/// # use ringleader_sim::RingRunner;
/// # use rand::SeedableRng;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lang = LgLanguage::new(GrowthFunction::NSqrtN);
/// let proto = LgRecognizer::new(&lang);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let w = lang.positive_example(64, &mut rng).unwrap();
/// assert!(RingRunner::new().run(&proto, &w)?.accepted());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LgRecognizer {
    language: LgLanguage,
}

impl LgRecognizer {
    /// Builds the recognizer for an [`LgLanguage`] (either tail variant).
    #[must_use]
    pub fn new(language: &LgLanguage) -> Self {
        Self { language: language.clone() }
    }

    /// The language being recognized.
    #[must_use]
    pub fn language(&self) -> &LgLanguage {
        &self.language
    }
}

/// Message tags.
const TAG_COUNT: bool = false;
const TAG_WINDOW: bool = true;

/// The phase-2 sliding-window token.
#[derive(Debug, Clone, PartialEq, Eq)]
struct WindowToken {
    valid: bool,
    /// Period `m` (every processor needs it to size the window).
    m: u64,
    /// Letters absorbed so far / check limit — present only for the
    /// literal (free-tail) language.
    pos_limit: Option<(u64, u64)>,
    /// The last `min(pos, m)` letters (a=false, b=true), oldest first.
    window: Vec<bool>,
}

impl WindowToken {
    fn encode(&self) -> BitString {
        let mut w = BitWriter::new();
        w.write_bit(TAG_WINDOW);
        w.write_bit(self.valid);
        w.write_bit(self.pos_limit.is_some());
        if let Some((pos, limit)) = self.pos_limit {
            w.write_elias_delta(pos + 1);
            w.write_elias_delta(limit + 1);
        }
        w.write_elias_delta(self.m);
        w.write_elias_delta(self.window.len() as u64 + 1);
        for &b in &self.window {
            w.write_bit(b);
        }
        w.finish()
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, ProcessError> {
        let valid = r.read_bit()?;
        let has_pos = r.read_bit()?;
        let pos_limit = if has_pos {
            let pos = r.read_elias_delta()? - 1;
            let limit = r.read_elias_delta()? - 1;
            Some((pos, limit))
        } else {
            None
        };
        let m = r.read_elias_delta()?;
        let len = r.read_elias_delta()? - 1;
        let mut window = Vec::with_capacity(len as usize);
        for _ in 0..len {
            window.push(r.read_bit()?);
        }
        Ok(Self { valid, m, pos_limit, window })
    }

    /// Folds one letter (false = a, true = b) into the scan.
    fn absorb(mut self, letter: bool) -> Self {
        let m = self.m as usize;
        if self.window.len() == m {
            let front = self.window.remove(0);
            let check_active = match self.pos_limit {
                // Literal L_g: only positions pos < limit are constrained.
                Some((pos, limit)) => pos < limit,
                // Fully periodic: every position with a full window.
                None => true,
            };
            if check_active && front != letter {
                self.valid = false;
            }
        }
        self.window.push(letter);
        if let Some((pos, limit)) = self.pos_limit {
            self.pos_limit = Some((pos + 1, limit));
        }
        self
    }
}

impl Protocol for LgRecognizer {
    fn name(&self) -> &'static str {
        "lg-recognizer"
    }

    fn topology(&self) -> Topology {
        Topology::Unidirectional
    }

    fn leader(&self, input: Symbol) -> Box<dyn Process> {
        Box::new(LeaderProcess { language: self.language.clone(), input, phase2_started: false })
    }

    fn follower(&self, input: Symbol) -> Box<dyn Process> {
        Box::new(FollowerProcess { input })
    }
}

struct LeaderProcess {
    language: LgLanguage,
    input: Symbol,
    phase2_started: bool,
}

impl LeaderProcess {
    /// Launches the window pass once `n` is known.
    fn start_phase2(&mut self, n: usize, ctx: &mut Context) {
        let m = self.language.period(n);
        if n < m {
            // Cannot fit one copy of x: every word is out.
            ctx.decide(false);
            return;
        }
        let checked = if self.language.has_periodic_tail() { n - m } else { (n / m - 1) * m };
        if checked == 0 {
            // The periodicity constraint is vacuous: every word is in.
            ctx.decide(true);
            return;
        }
        self.phase2_started = true;
        let token = WindowToken {
            valid: true,
            m: m as u64,
            // limit = last constrained position + m = checked + m.
            pos_limit: (!self.language.has_periodic_tail()).then(|| (0, (checked + m) as u64)),
            window: Vec::new(),
        }
        .absorb(self.input.index() == 1);
        ctx.send(Direction::Clockwise, token.encode());
    }
}

impl Process for LeaderProcess {
    fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
        if let Some(n) = ctx.known_ring_size() {
            // Note 7.4: n is known — skip the counting pass entirely.
            self.start_phase2(n, ctx);
        } else {
            let mut w = BitWriter::new();
            w.write_bit(TAG_COUNT);
            w.write_elias_delta(1);
            ctx.send(Direction::Clockwise, w.finish());
        }
        Ok(())
    }

    fn on_message(&mut self, _dir: Direction, msg: &BitString, ctx: &mut Context) -> ProcessResult {
        let mut r = BitReader::new(msg);
        let tag = r.read_bit()?;
        if tag == TAG_COUNT {
            if self.phase2_started {
                return Err(ProcessError::InvalidState("count token after phase 2".into()));
            }
            let n = r.read_elias_delta()? as usize;
            self.start_phase2(n, ctx);
        } else {
            let token = WindowToken::decode(&mut r)?;
            ctx.decide(token.valid);
        }
        Ok(())
    }
}

struct FollowerProcess {
    input: Symbol,
}

impl Process for FollowerProcess {
    fn on_message(&mut self, _dir: Direction, msg: &BitString, ctx: &mut Context) -> ProcessResult {
        let mut r = BitReader::new(msg);
        let tag = r.read_bit()?;
        let out = if tag == TAG_COUNT {
            let count = r.read_elias_delta()?;
            let mut w = BitWriter::new();
            w.write_bit(TAG_COUNT);
            w.write_elias_delta(count + 1);
            w.finish()
        } else {
            WindowToken::decode(&mut r)?.absorb(self.input.index() == 1).encode()
        };
        ctx.send(Direction::Clockwise, out);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ringleader_automata::Word;
    use ringleader_langs::{GrowthFunction, Language};
    use ringleader_sim::RingRunner;

    fn growths() -> [GrowthFunction; 5] {
        [
            GrowthFunction::NLogN,
            GrowthFunction::NQuarterLog,
            GrowthFunction::NSqrtN,
            GrowthFunction::NSquaredHalf,
            GrowthFunction::NSquared,
        ]
    }

    #[test]
    fn decisions_match_language_on_samples() {
        let mut rng = StdRng::seed_from_u64(21);
        for g in growths() {
            for lang in [LgLanguage::new(g), LgLanguage::fully_periodic(g)] {
                let proto = LgRecognizer::new(&lang);
                for n in [2usize, 3, 8, 16, 17, 30, 64, 100] {
                    if let Some(w) = lang.positive_example(n, &mut rng) {
                        let outcome = RingRunner::new().run(&proto, &w).unwrap();
                        assert!(outcome.accepted(), "{} n={n} positive", lang.name());
                    }
                    if let Some(w) = lang.negative_example(n, &mut rng) {
                        let outcome = RingRunner::new().run(&proto, &w).unwrap();
                        assert!(!outcome.accepted(), "{} n={n} negative", lang.name());
                    }
                }
            }
        }
    }

    #[test]
    fn exhaustive_small_n() {
        let sigma = ringleader_automata::Alphabet::from_chars("ab").unwrap();
        for g in [GrowthFunction::NLogN, GrowthFunction::NSqrtN] {
            for lang in [LgLanguage::new(g), LgLanguage::fully_periodic(g)] {
                let proto = LgRecognizer::new(&lang);
                for len in 1..=10usize {
                    for idx in 0..(1usize << len) {
                        let text: String =
                            (0..len).map(|i| if (idx >> i) & 1 == 0 { 'a' } else { 'b' }).collect();
                        let w = Word::from_str(&text, &sigma).unwrap();
                        let outcome = RingRunner::new().run(&proto, &w).unwrap();
                        assert_eq!(
                            outcome.accepted(),
                            lang.contains(&w),
                            "{} on {text}",
                            lang.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn known_n_skips_counting_pass() {
        let mut rng = StdRng::seed_from_u64(5);
        let lang = LgLanguage::new(GrowthFunction::NSqrtN);
        let proto = LgRecognizer::new(&lang);
        let w = lang.positive_example(64, &mut rng).unwrap();
        let unknown = RingRunner::new().run(&proto, &w).unwrap();
        let known = {
            let mut r = RingRunner::new();
            r.known_ring_size(true);
            r.run(&proto, &w).unwrap()
        };
        assert!(unknown.accepted() && known.accepted());
        // Known-n drops the counting pass: strictly fewer bits and half the
        // messages.
        assert!(known.stats.total_bits < unknown.stats.total_bits);
        assert_eq!(known.stats.message_count * 2, unknown.stats.message_count);
    }

    #[test]
    fn bits_scale_with_g() {
        // For each g, bits(n)/g(n) should be bounded; and across g's at the
        // same n the measured bits should be ordered like g.
        let mut rng = StdRng::seed_from_u64(13);
        let n = 256usize;
        let mut measured = Vec::new();
        for g in [GrowthFunction::NLogN, GrowthFunction::NSqrtN, GrowthFunction::NSquaredHalf] {
            let lang = LgLanguage::new(g);
            let proto = LgRecognizer::new(&lang);
            let w = lang.positive_example(n, &mut rng).unwrap();
            let bits = RingRunner::new().run(&proto, &w).unwrap().stats.total_bits;
            measured.push((g, bits));
        }
        assert!(measured[0].1 < measured[1].1, "{measured:?}");
        assert!(measured[1].1 < measured[2].1, "{measured:?}");
        // Quadratic tier really is ~n²-ish: window of m=n... m=n means
        // i=1 → leader accepts instantly. For g=n², at n=256 m=256 → the
        // constraint is vacuous and phase 2 is skipped; bits = counting
        // pass only. Verify that special case explicitly:
        let lang = LgLanguage::new(GrowthFunction::NSquared);
        let proto = LgRecognizer::new(&lang);
        let w = lang.positive_example(n, &mut rng).unwrap();
        let outcome = RingRunner::new().run(&proto, &w).unwrap();
        assert!(outcome.accepted());
    }

    #[test]
    fn periodic_variant_known_n_messages_are_window_sized() {
        // Fully periodic + known n: no counting pass, no position fields —
        // message size is m + O(log m) framing. This is the protocol whose
        // bit complexity is Θ(n·m) for every m ≥ 1.
        let mut rng = StdRng::seed_from_u64(9);
        let lang = LgLanguage::fully_periodic(GrowthFunction::NSqrtN);
        let proto = LgRecognizer::new(&lang);
        let n = 144usize; // m = 12
        let w = lang.positive_example(n, &mut rng).unwrap();
        let mut runner = RingRunner::new();
        runner.known_ring_size(true);
        let outcome = runner.run(&proto, &w).unwrap();
        assert!(outcome.accepted());
        assert_eq!(outcome.stats.message_count, n);
        let m = lang.period(n);
        // window m bits + tag/valid/flag + delta(m) + delta(len+1): small.
        assert!(outcome.stats.max_message_bits <= m + 20, "{}", outcome.stats.max_message_bits);
    }

    #[test]
    fn tail_is_free_only_in_literal_variant() {
        // n = 18, g = n^1.5 → m = 5, i = 3, tail r = 3: literal L_g leaves
        // the last 3 letters unconstrained; the periodic variant does not.
        let sigma = ringleader_automata::Alphabet::from_chars("ab").unwrap();
        let base: String = "ababa".chars().cycle().take(15).collect();
        let word_free_tail = Word::from_str(&format!("{base}bbb"), &sigma).unwrap();
        let literal = LgLanguage::new(GrowthFunction::NSqrtN);
        let periodic = LgLanguage::fully_periodic(GrowthFunction::NSqrtN);
        assert!(literal.contains(&word_free_tail));
        assert!(!periodic.contains(&word_free_tail));
        for (lang, expect) in [(literal, true), (periodic, false)] {
            let proto = LgRecognizer::new(&lang);
            let outcome = RingRunner::new().run(&proto, &word_free_tail).unwrap();
            assert_eq!(outcome.accepted(), expect, "{}", lang.name());
        }
    }
}
