//! Theorem 5's transformation: reroute one link's traffic the long way.
//!
//! The bidirectional lower bound works by turning any (token) ring
//! algorithm into a **line** algorithm: pick the link `l` carrying the
//! fewest bits, add a leading 0-bit to every original message, and replace
//! every message on `l` by a 1-tagged message travelling the other way
//! around (`n−1` hops). Since `l` carries at most `β/n` of the `β` total
//! bits, the transformed execution costs at most ~4× the original — the
//! constant the whole Theorem 5 argument rests on.
//!
//! [`CutLinkAdapter`] implements the transformation as a runnable protocol
//! wrapper. The cut is the `pₙ ↔ p₁` link (for the uniform-traffic token
//! protocols measured in experiment E4 every link carries the same load,
//! so this *is* a minimum-traffic link). Setup mirrors the paper's
//! Theorem 7 Stage 1: the leader sends `pₙ` an "end of line" marker which
//! is "not considered part of A′" — here it is a **0-bit message** (plus a
//! 0-bit ack), so it is literally free and unambiguous (every data message
//! carries at least its 1-bit tag).
//!
//! After setup, no data bit ever crosses the cut link — the tests assert
//! `link_bits(cut) == 0` — and the measured blow-up stays within the
//! paper's bound.

use ringleader_automata::Symbol;
use ringleader_bitio::{BitReader, BitString, BitWriter};
use ringleader_sim::{
    Context, Direction, Process, ProcessError, ProcessResult, Protocol, Topology,
};

/// Wraps an inner ring protocol, rerouting all cut-link traffic the long
/// way (Theorem 5 / Theorem 7 Stage 1).
///
/// Requires rings of `n ≥ 2` (with one processor there is no second path).
///
/// # Examples
///
/// ```rust
/// # use ringleader_core::{CutLinkAdapter, DfaOnePass};
/// # use ringleader_langs::DfaLanguage;
/// # use ringleader_automata::{Alphabet, Word};
/// # use ringleader_sim::RingRunner;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sigma = Alphabet::from_chars("ab")?;
/// let lang = DfaLanguage::from_regex("(ab)*", &sigma)?;
/// let inner = DfaOnePass::new(&lang);
/// let adapted = CutLinkAdapter::new(inner.clone());
/// let w = Word::from_str("abab", &sigma)?;
/// let plain = RingRunner::new().run(&inner, &w)?;
/// let rerouted = RingRunner::new().run(&adapted, &w)?;
/// assert_eq!(plain.decision, rerouted.decision);
/// // The transformation at most quadruples the bits (Theorem 5's bound).
/// assert!(rerouted.stats.total_bits <= 4 * plain.stats.total_bits);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CutLinkAdapter<P> {
    inner: P,
}

impl<P: Protocol> CutLinkAdapter<P> {
    /// Wraps `inner`. The inner protocol may be unidirectional or
    /// bidirectional; its messages are re-tagged and rerouted
    /// transparently.
    #[must_use]
    pub fn new(inner: P) -> Self {
        Self { inner }
    }

    /// The wrapped protocol.
    #[must_use]
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

fn tag(bit: bool, payload: &BitString) -> BitString {
    let mut w = BitWriter::new();
    w.write_bit(bit);
    w.write_bitstring(payload);
    w.finish()
}

fn untag(msg: &BitString) -> Result<(bool, BitString), ProcessError> {
    let mut r = BitReader::new(msg);
    let bit = r.read_bit()?;
    Ok((bit, r.read_rest()))
}

/// Translates inner-process effects into tagged physical sends.
///
/// `cut_clockwise` — this node's clockwise send crosses the cut (End);
/// `cut_counter_clockwise` — its counter-clockwise send does (Leader).
fn relay_effects(
    inner_ctx: Context,
    ctx: &mut Context,
    cut_clockwise: bool,
    cut_counter_clockwise: bool,
) {
    let (sends, decision) = inner_ctx.into_effects();
    for (dir, payload) in sends {
        match dir {
            Direction::Clockwise if cut_clockwise => {
                // Reroute: travel the long way, counter-clockwise.
                ctx.send(Direction::CounterClockwise, tag(true, &payload));
            }
            Direction::CounterClockwise if cut_counter_clockwise => {
                ctx.send(Direction::Clockwise, tag(true, &payload));
            }
            dir => ctx.send(dir, tag(false, &payload)),
        }
    }
    if let Some(d) = decision {
        ctx.decide(d);
    }
}

impl<P: Protocol> Protocol for CutLinkAdapter<P> {
    fn name(&self) -> &'static str {
        "cut-link-adapter"
    }

    fn topology(&self) -> Topology {
        // The 0-bit setup marker/ack use the cut link; every data message
        // avoids it (asserted by the tests via link_bits == 0).
        Topology::Bidirectional
    }

    fn leader(&self, input: Symbol) -> Box<dyn Process> {
        Box::new(AdapterLeader { inner: self.inner.leader(input), started: false })
    }

    fn follower(&self, input: Symbol) -> Box<dyn Process> {
        Box::new(AdapterFollower { inner: self.inner.follower(input), role: Role::Pending })
    }
}

struct AdapterLeader {
    inner: Box<dyn Process>,
    started: bool,
}

impl Process for AdapterLeader {
    fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
        // "End of line" marker to p_n: 0 bits, one hop counter-clockwise.
        ctx.send(Direction::CounterClockwise, BitString::new());
        Ok(())
    }

    fn on_message(&mut self, dir: Direction, msg: &BitString, ctx: &mut Context) -> ProcessResult {
        if msg.is_empty() {
            if dir == Direction::CounterClockwise {
                // Our own marker came straight back: the ring has n = 1 and
                // there is no second path to reroute over.
                return Err(ProcessError::InvalidState(
                    "cut-link adapter requires a ring of at least 2 processors".into(),
                ));
            }
            if self.started {
                return Err(ProcessError::InvalidState("duplicate setup ack".into()));
            }
            // Ack from the end of the line: start the inner protocol.
            self.started = true;
            let mut inner_ctx = Context::detached(true, ctx.known_ring_size());
            self.inner.on_start(&mut inner_ctx)?;
            relay_effects(inner_ctx, ctx, false, true);
            return Ok(());
        }
        let (rerouted, payload) = untag(msg)?;
        // Post-setup the leader only receives counter-clockwise-travelling
        // physical messages (its other incoming link is the cut). A
        // rerouted message is semantically an inner message that crossed
        // the cut clockwise.
        let inner_dir = if rerouted { Direction::Clockwise } else { Direction::CounterClockwise };
        let mut inner_ctx = Context::detached(true, ctx.known_ring_size());
        self.inner.on_message(inner_dir, &payload, &mut inner_ctx)?;
        relay_effects(inner_ctx, ctx, false, true);
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    /// No message received yet; the first one reveals the role.
    Pending,
    /// An interior processor of the line.
    Middle,
    /// The end of the line (`pₙ`): its clockwise link is the cut.
    End,
}

struct AdapterFollower {
    inner: Box<dyn Process>,
    role: Role,
}

impl AdapterFollower {
    fn handle(&mut self, dir: Direction, msg: &BitString, ctx: &mut Context) -> ProcessResult {
        let (rerouted, payload) = untag(msg)?;
        match self.role {
            Role::Pending => Err(ProcessError::InvalidState("role not assigned".into())),
            Role::Middle => {
                if rerouted {
                    // In transit around the long way: pass through intact.
                    ctx.send(dir, msg.clone());
                    Ok(())
                } else {
                    let mut inner_ctx = Context::detached(false, ctx.known_ring_size());
                    self.inner.on_message(dir, &payload, &mut inner_ctx)?;
                    relay_effects(inner_ctx, ctx, false, false);
                    Ok(())
                }
            }
            Role::End => {
                // Rerouted messages arriving here crossed the cut
                // counter-clockwise (sent by the leader).
                let inner_dir = if rerouted { Direction::CounterClockwise } else { dir };
                let mut inner_ctx = Context::detached(false, ctx.known_ring_size());
                self.inner.on_message(inner_dir, &payload, &mut inner_ctx)?;
                relay_effects(inner_ctx, ctx, true, false);
                Ok(())
            }
        }
    }
}

impl Process for AdapterFollower {
    fn on_message(&mut self, dir: Direction, msg: &BitString, ctx: &mut Context) -> ProcessResult {
        if self.role == Role::Pending {
            if msg.is_empty() {
                // The end-of-line marker: only p_n ever receives it.
                self.role = Role::End;
                ctx.send(Direction::Clockwise, BitString::new()); // 0-bit ack
                return Ok(());
            }
            self.role = Role::Middle;
        }
        if msg.is_empty() {
            return Err(ProcessError::InvalidState("unexpected 0-bit message".into()));
        }
        self.handle(dir, msg, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CountRingSize, DfaOnePass, ThreeCounters};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ringleader_automata::{Alphabet, Word};
    use ringleader_langs::{DfaLanguage, Language};
    use ringleader_sim::{validate_token_discipline, RingRunner, Scheduler, SimError};

    fn compare(inner: &dyn Protocol, adapted: &dyn Protocol, w: &Word) -> (usize, usize) {
        let plain = RingRunner::new().run(inner, w).unwrap();
        let rerouted = RingRunner::new().run(adapted, w).unwrap();
        assert_eq!(plain.decision, rerouted.decision, "decision changed by transformation");
        (plain.stats.total_bits, rerouted.stats.total_bits)
    }

    #[test]
    fn preserves_decisions_for_dfa_protocol() {
        let sigma = Alphabet::from_chars("ab").unwrap();
        let lang = DfaLanguage::from_regex("(a|b)*abb", &sigma).unwrap();
        let inner = DfaOnePass::new(&lang);
        let adapted = CutLinkAdapter::new(inner.clone());
        let mut rng = StdRng::seed_from_u64(3);
        for n in [2usize, 3, 5, 16, 64] {
            for want in [true, false] {
                let Some(w) = (if want {
                    lang.positive_example(n, &mut rng)
                } else {
                    lang.negative_example(n, &mut rng)
                }) else {
                    continue;
                };
                let (_, _) = compare(&inner, &adapted, &w);
            }
        }
    }

    #[test]
    fn blowup_is_within_paper_bound() {
        // For uniform-traffic one-pass protocols the fixed cut IS a
        // minimum-traffic link, so the paper's ≤4× applies (asymptotically;
        // tiny rings get a +2-message slack from framing).
        let sigma = Alphabet::from_chars("ab").unwrap();
        let lang = DfaLanguage::from_regex("(a|b)*abb", &sigma).unwrap(); // 2-bit states
        let inner = DfaOnePass::new(&lang);
        let adapted = CutLinkAdapter::new(inner.clone());
        let mut rng = StdRng::seed_from_u64(9);
        for n in [8usize, 32, 128] {
            let w = lang
                .positive_example(n, &mut rng)
                .or_else(|| lang.negative_example(n, &mut rng))
                .unwrap();
            let (plain, rerouted) = compare(&inner, &adapted, &w);
            let ratio = rerouted as f64 / plain as f64;
            assert!(ratio <= 4.0, "n={n}: ratio {ratio} exceeds the Theorem 5 bound");
        }
    }

    #[test]
    fn no_data_bits_cross_the_cut() {
        let inner = CountRingSize::probe();
        let adapted = CutLinkAdapter::new(inner);
        let sigma = Alphabet::from_chars("a").unwrap();
        for n in [2usize, 5, 20] {
            let w = Word::from_str(&"a".repeat(n), &sigma).unwrap();
            let outcome = RingRunner::new().run(&adapted, &w).unwrap();
            assert!(outcome.accepted());
            assert_eq!(outcome.stats.link_bits(n - 1), 0, "n={n}: data crossed the cut link");
        }
    }

    #[test]
    fn transformed_execution_is_still_token() {
        // [TL] gives token algorithms; the cut transformation must not
        // break the discipline.
        let inner = ThreeCounters::new();
        let adapted = CutLinkAdapter::new(inner);
        let sigma = Alphabet::from_chars("012").unwrap();
        let w = Word::from_str("001122", &sigma).unwrap();
        let mut runner = RingRunner::new();
        runner.record_trace(true);
        let outcome = runner.run(&adapted, &w).unwrap();
        assert!(outcome.accepted());
        assert!(validate_token_discipline(&outcome.trace.unwrap()));
    }

    #[test]
    fn works_under_adversarial_schedulers() {
        let sigma = Alphabet::from_chars("ab").unwrap();
        let lang = DfaLanguage::from_regex("(ab)*", &sigma).unwrap();
        let adapted = CutLinkAdapter::new(DfaOnePass::new(&lang));
        let w = Word::from_str("abab", &sigma).unwrap();
        for sched in [
            Scheduler::Fifo,
            Scheduler::LongestQueue,
            Scheduler::Random { seed: 0 },
            Scheduler::Random { seed: 99 },
        ] {
            let mut runner = RingRunner::new();
            runner.scheduler(sched);
            assert!(runner.run(&adapted, &w).unwrap().accepted());
        }
    }

    #[test]
    fn single_processor_ring_is_rejected() {
        let sigma = Alphabet::from_chars("a").unwrap();
        let adapted = CutLinkAdapter::new(CountRingSize::probe());
        let w = Word::from_str("a", &sigma).unwrap();
        let err = RingRunner::new().run(&adapted, &w).unwrap_err();
        assert!(matches!(err, SimError::Process { position: 0, .. }));
    }

    #[test]
    fn counting_protocol_roundtrip_bits() {
        // Counting sends ~log n bits over the cut; rerouting multiplies
        // that one message by n−1 hops. The blow-up must stay ≤ ~4×:
        // original Θ(n log n), reroute adds (n−2)·(log n + 1) ≤ original.
        let inner = CountRingSize::probe();
        let adapted = CutLinkAdapter::new(inner.clone());
        let sigma = Alphabet::from_chars("a").unwrap();
        for n in [16usize, 64, 256] {
            let w = Word::from_str(&"a".repeat(n), &sigma).unwrap();
            let (plain, rerouted) = compare(&inner, &adapted, &w);
            let ratio = rerouted as f64 / plain as f64;
            assert!(ratio <= 4.0, "n={n}: {ratio}");
        }
    }
}
