//! Theorem 3, Stage 1: the stateless-replay transformation `A → A′`.
//!
//! Theorem 3 reduces any multi-pass `O(n)`-bit unidirectional algorithm to
//! a one-pass one. Its first stage builds an equivalent algorithm `A′`
//! "that will not need any information about previous messages kept in the
//! processors": in pass `i` each message carries all `i−1` earlier
//! pass-messages plus the new one, so a processor can re-simulate its own
//! history from the wire instead of remembering it. The paper bounds the
//! cost by `BIT_{A′}(n) ≤ π_A · BIT_A(n) ≤ c²n = O(n)` — still linear,
//! because the pass count `π_A` of an `O(n)` algorithm is bounded
//! (Corollary 4).
//!
//! [`StatelessTwoPass`] is that construction applied to the Note 7.5
//! two-pass parity algorithm (the workspace's canonical multi-pass
//! protocol): pass-2 messages additionally carry the pass-1 counter, and
//! followers hold **no** mutable state — each handler re-derives
//! everything from the message alone. Statelessness costs a 1-bit pass
//! tag per message (a stateful processor distinguishes passes by counting
//! arrivals) plus the replayed pass-1 counter in pass 2: `(1+k)` +
//! `(1+2k+1) = (3k+3)·n` bits vs the stateful `(2k+1)·n` — the paper's
//! `π_A`-bounded blow-up, visible on the wire, with the complexity class
//! unchanged.

use ringleader_automata::Symbol;
use ringleader_bitio::{BitReader, BitString, BitWriter};
use ringleader_langs::TradeoffLanguage;
use ringleader_sim::{
    Context, Direction, Process, ProcessError, ProcessResult, Protocol, Topology,
};

/// The stateless replica of [`TwoPassParity`](crate::TwoPassParity)
/// (Theorem 3 Stage 1 construction).
///
/// Recognizes the same [`TradeoffLanguage`]; followers keep no state
/// between messages — message framing alone distinguishes the passes.
///
/// # Examples
///
/// ```rust
/// # use ringleader_core::{StatelessTwoPass, TwoPassParity};
/// # use ringleader_langs::Language;
/// # use ringleader_automata::Word;
/// # use ringleader_sim::RingRunner;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let stateless = StatelessTwoPass::new(2);
/// let stateful = TwoPassParity::new(2);
/// let w = Word::from_str("ABBA", stateless.language().alphabet())?;
/// let a = RingRunner::new().run(&stateless, &w)?;
/// let b = RingRunner::new().run(&stateful, &w)?;
/// assert_eq!(a.decision, b.decision);
/// // The stateless construction pays (3k+3)n instead of (2k+1)n.
/// assert_eq!(a.stats.total_bits, stateless.predicted_bits(4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StatelessTwoPass {
    language: TradeoffLanguage,
    k: u32,
}

impl StatelessTwoPass {
    /// Builds the protocol for family member `k` (alphabet `2^k`).
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside `1..=5` (see [`TradeoffLanguage::new`]).
    #[must_use]
    pub fn new(k: u32) -> Self {
        Self { language: TradeoffLanguage::new(k), k }
    }

    /// The language being recognized.
    #[must_use]
    pub fn language(&self) -> &TradeoffLanguage {
        &self.language
    }

    /// Exact bit complexity: pass 1 costs `(1+k)·n` (tag + counter), pass
    /// 2 carries the replayed history too: `(2+2k)·n`. Total `(3k+3)·n`.
    #[must_use]
    pub fn predicted_bits(&self, n: usize) -> usize {
        (3 * self.k as usize + 3) * n
    }

    fn modulus(&self) -> u64 {
        self.language.modulus() as u64
    }
}

/// Message layout: a 1-bit pass tag, then
/// * pass 1: `count` (k bits);
/// * pass 2: replayed pass-1 `count` (k bits) + `designated` (k bits) +
///   parity (1 bit). The replay is what lets a stateless processor act in
///   pass 2 exactly as its stateful twin would — it re-derives "what did I
///   forward in pass 1" from the wire.
#[derive(Debug, Clone, Copy)]
enum Frame {
    Pass1 { count: u64 },
    Pass2 { replayed_count: u64, designated: u64, parity: u64 },
}

impl Frame {
    fn encode(self, k: u32) -> BitString {
        let mut w = BitWriter::new();
        match self {
            Frame::Pass1 { count } => {
                w.write_bit(false);
                w.write_bits(count, k);
            }
            Frame::Pass2 { replayed_count, designated, parity } => {
                w.write_bit(true);
                w.write_bits(replayed_count, k);
                w.write_bits(designated, k);
                w.write_bits(parity, 1);
            }
        }
        w.finish()
    }

    fn decode(msg: &BitString, k: u32) -> Result<Self, ringleader_bitio::DecodeError> {
        let mut r = BitReader::new(msg);
        if r.read_bit()? {
            Ok(Frame::Pass2 {
                replayed_count: r.read_bits(k)?,
                designated: r.read_bits(k)?,
                parity: r.read_bits(1)?,
            })
        } else {
            Ok(Frame::Pass1 { count: r.read_bits(k)? })
        }
    }
}

impl Protocol for StatelessTwoPass {
    fn name(&self) -> &'static str {
        "stateless-two-pass"
    }

    fn topology(&self) -> Topology {
        Topology::Unidirectional
    }

    fn leader(&self, input: Symbol) -> Box<dyn Process> {
        Box::new(LeaderProcess { k: self.k, modulus: self.modulus(), input })
    }

    fn follower(&self, input: Symbol) -> Box<dyn Process> {
        // The whole point: the follower struct holds only its immutable
        // input letter — no pass counter, no remembered messages.
        Box::new(StatelessFollower { k: self.k, modulus: self.modulus(), input })
    }
}

struct LeaderProcess {
    k: u32,
    modulus: u64,
    input: Symbol,
}

impl Process for LeaderProcess {
    fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
        ctx.send(Direction::Clockwise, Frame::Pass1 { count: 1 % self.modulus }.encode(self.k));
        Ok(())
    }

    fn on_message(&mut self, _dir: Direction, msg: &BitString, ctx: &mut Context) -> ProcessResult {
        match Frame::decode(msg, self.k)? {
            Frame::Pass1 { count } => {
                // The counter returned: launch pass 2 with the history
                // replayed in every message.
                let designated = count;
                let parity = u64::from(self.input.index() as u64 == designated);
                ctx.send(
                    Direction::Clockwise,
                    Frame::Pass2 { replayed_count: count, designated, parity }.encode(self.k),
                );
            }
            Frame::Pass2 { parity, .. } => {
                ctx.decide(parity == 0);
            }
        }
        Ok(())
    }

    // Statelessness is the construction's whole point (Theorem 3 Stage
    // 1): there is nothing to checkpoint beyond construction parameters.
    fn save_state(&self) -> Option<Vec<u8>> {
        Some(Vec::new())
    }

    fn load_state(&mut self, bytes: &[u8]) -> ProcessResult {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(ProcessError::InvalidState("stateless-two-pass saves no process state".into()))
        }
    }
}

struct StatelessFollower {
    k: u32,
    modulus: u64,
    input: Symbol,
}

impl Process for StatelessFollower {
    fn on_message(&mut self, _dir: Direction, msg: &BitString, ctx: &mut Context) -> ProcessResult {
        let out = match Frame::decode(msg, self.k)? {
            Frame::Pass1 { count } => Frame::Pass1 { count: (count + 1) % self.modulus },
            Frame::Pass2 { replayed_count, designated, parity } => {
                // Re-simulate the pass-1 action from the replayed history
                // (the stateful variant would have *remembered* having
                // forwarded `replayed_count + 1`), then do the pass-2 work.
                let replayed_count = (replayed_count + 1) % self.modulus;
                let parity = parity ^ u64::from(self.input.index() as u64 == designated);
                Frame::Pass2 { replayed_count, designated, parity }
            }
        };
        ctx.send(Direction::Clockwise, out.encode(self.k));
        Ok(())
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        Some(Vec::new())
    }

    fn load_state(&mut self, bytes: &[u8]) -> ProcessResult {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(ProcessError::InvalidState("stateless-two-pass saves no process state".into()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TwoPassParity;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ringleader_automata::Word;
    use ringleader_langs::Language;
    use ringleader_sim::RingRunner;

    #[test]
    fn agrees_with_stateful_twin_exhaustively() {
        let stateless = StatelessTwoPass::new(2);
        let stateful = TwoPassParity::new(2);
        for len in 1..=5usize {
            for idx in 0..4usize.pow(len as u32) {
                let mut x = idx;
                let symbols: Vec<_> = (0..len)
                    .map(|_| {
                        let s = Symbol((x % 4) as u16);
                        x /= 4;
                        s
                    })
                    .collect();
                let w = Word::from_symbols(symbols);
                let a = RingRunner::new().run(&stateless, &w).unwrap().accepted();
                let b = RingRunner::new().run(&stateful, &w).unwrap().accepted();
                assert_eq!(a, b, "idx={idx} len={len}");
            }
        }
    }

    #[test]
    fn decides_the_language_correctly() {
        let mut rng = StdRng::seed_from_u64(8);
        for k in 1..=4u32 {
            let proto = StatelessTwoPass::new(k);
            let lang = proto.language().clone();
            for n in [1usize, 2, 9, 40] {
                for want in [true, false] {
                    let Some(w) = (if want {
                        lang.positive_example(n, &mut rng)
                    } else {
                        lang.negative_example(n, &mut rng)
                    }) else {
                        continue;
                    };
                    assert_eq!(
                        RingRunner::new().run(&proto, &w).unwrap().accepted(),
                        want,
                        "k={k} n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn replay_overhead_matches_theorem3_accounting() {
        // (3k+1)n stateless vs (2k+1)n stateful: same complexity class,
        // π_A-bounded blow-up — exactly the Stage 1 cost statement.
        let mut rng = StdRng::seed_from_u64(4);
        for k in 1..=5u32 {
            let stateless = StatelessTwoPass::new(k);
            let stateful = TwoPassParity::new(k);
            let n = 60usize;
            let w = stateless.language().positive_example(n, &mut rng).unwrap();
            let a = RingRunner::new().run(&stateless, &w).unwrap().stats.total_bits;
            let b = RingRunner::new().run(&stateful, &w).unwrap().stats.total_bits;
            assert_eq!(a, stateless.predicted_bits(n), "k={k}");
            assert_eq!(a, b + (k as usize + 2) * n, "k={k}: tag+replay add (k+2)n");
            // Bounded blow-up: at most doubling (equality only at k=1).
            assert!(a <= 2 * b, "k={k}");
        }
    }
}
