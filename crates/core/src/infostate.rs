//! Theorem 4/5 empirics: the information-state census.
//!
//! The `Ω(n log n)` lower bound works by counting **information states** —
//! a processor's letter plus its ordered send/receive history. The paper
//! shows that over the shortest witness word `wᵢ` for each state `ISᵢ`, at
//! most **two** processors (three, bidirectionally) can share an
//! information state; otherwise a cut-and-splice of the ring between the
//! duplicates yields a shorter witness, contradiction. Distinct states
//! then number `Ω(n)`, and telling `⌈n/2⌉` states apart takes `Ω(log n)`
//! bits somewhere on the wire.
//!
//! [`analyze_info_states`] measures all of this on real executions:
//! distinct-state counts, the multiplicity bound on shortest-witness
//! words, and the message-width growth the bound forces.

// detlint: allow(nondet-hash-iter): InfoState has no Ord; maps below never leak order
use std::collections::HashMap;

use ringleader_automata::{Alphabet, Symbol, Word};
use ringleader_sim::{InfoState, Protocol, RingRunner, SimError};

/// Census results over a set of words (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct InfoStateReport {
    /// Number of words executed.
    pub words_tested: usize,
    /// Number of distinct information states observed across all
    /// executions and processors.
    pub distinct_states: usize,
    /// Over the shortest-witness words only: the largest number of
    /// processors sharing one information state in a single execution.
    /// Theorem 4 predicts ≤ 2 for unidirectional algorithms.
    pub max_multiplicity_on_shortest_witness: usize,
    /// Largest single message, in bits, across all executions.
    pub max_message_bits: usize,
    /// `⌈log₂ distinct_states⌉` — the information-theoretic number of bits
    /// needed to name a state.
    pub bits_to_distinguish: u32,
}

/// Runs `protocol` on every word in `words` (traced), extracts the
/// information states, and reports the census.
///
/// # Errors
///
/// Propagates any [`SimError`] from the underlying runs.
pub fn analyze_info_states(
    protocol: &dyn Protocol,
    words: &[Word],
) -> Result<InfoStateReport, SimError> {
    let mut runner = RingRunner::new();
    runner.record_trace(true);
    // state → index of the shortest word that witnessed it.
    // detlint: allow(nondet-hash-iter): only `.values()` feed an order-insensitive set
    let mut witness: HashMap<InfoState, usize> = HashMap::new();
    let mut per_word_states: Vec<Vec<InfoState>> = Vec::with_capacity(words.len());
    let mut max_message_bits = 0usize;

    for (idx, word) in words.iter().enumerate() {
        let outcome = runner.run(protocol, word)?;
        max_message_bits = max_message_bits.max(outcome.stats.max_message_bits);
        let trace = outcome.trace.expect("tracing enabled above");
        let states = trace.info_states(word.symbols());
        for state in &states {
            match witness.get(state) {
                Some(&w) if words[w].len() <= word.len() => {}
                _ => {
                    witness.insert(state.clone(), idx);
                }
            }
        }
        per_word_states.push(states);
    }

    // Multiplicity check on shortest-witness words.
    let witness_words: std::collections::BTreeSet<usize> = witness.values().copied().collect();
    let mut max_multiplicity = 0usize;
    for &w in &witness_words {
        // detlint: allow(nondet-hash-iter): reduced via max(); order cannot escape
        let mut counts: HashMap<&InfoState, usize> = HashMap::new();
        for state in &per_word_states[w] {
            *counts.entry(state).or_insert(0) += 1;
        }
        if let Some(&m) = counts.values().max() {
            max_multiplicity = max_multiplicity.max(m);
        }
    }

    let distinct_states = witness.len();
    Ok(InfoStateReport {
        words_tested: words.len(),
        distinct_states,
        max_multiplicity_on_shortest_witness: max_multiplicity,
        max_message_bits,
        bits_to_distinguish: ringleader_bitio::bits_for(distinct_states),
    })
}

/// All words of exactly length `len` over `alphabet`, in symbol order.
///
/// Gate on `alphabet.len().pow(len)` before calling — the output is the
/// full cartesian product.
#[must_use]
pub fn exhaustive_words(alphabet: &Alphabet, len: usize) -> Vec<Word> {
    let k = alphabet.len();
    let total = k.pow(len as u32);
    let mut out = Vec::with_capacity(total);
    for mut idx in 0..total {
        let mut symbols = Vec::with_capacity(len);
        for _ in 0..len {
            symbols.push(Symbol((idx % k) as u16));
            idx /= k;
        }
        out.push(Word::from_symbols(symbols));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CountRingSize, DfaOnePass, ThreeCounters};
    use ringleader_langs::{DfaLanguage, Language};

    #[test]
    fn exhaustive_words_cover_the_space() {
        let sigma = Alphabet::from_chars("ab").unwrap();
        let words = exhaustive_words(&sigma, 3);
        assert_eq!(words.len(), 8);
        let set: std::collections::BTreeSet<String> =
            words.iter().map(|w| w.render(&sigma)).collect();
        assert_eq!(set.len(), 8);
        assert!(set.contains("aba"));
    }

    #[test]
    fn counting_protocol_has_n_distinct_states_per_ring() {
        // Every processor of the counting pass sees a different counter, so
        // a single n-ring contributes n distinct states.
        let proto = CountRingSize::probe();
        let sigma = Alphabet::from_chars("a").unwrap();
        let words: Vec<Word> =
            (1..=8).map(|n| Word::from_str(&"a".repeat(n), &sigma).unwrap()).collect();
        let report = analyze_info_states(&proto, &words).unwrap();
        // States: leader(n) distinct per n + followers with distinct counters.
        assert!(report.distinct_states >= 8 + 7, "{report:?}");
        assert!(report.max_multiplicity_on_shortest_witness <= 2, "{report:?}");
    }

    #[test]
    fn regular_protocol_reuses_finitely_many_message_types() {
        let sigma = Alphabet::from_chars("ab").unwrap();
        let lang = DfaLanguage::from_regex("(ab)*", &sigma).unwrap();
        let proto = DfaOnePass::new(&lang);
        // All words of lengths 1..=6.
        let mut words = Vec::new();
        for len in 1..=6usize {
            words.extend(exhaustive_words(&sigma, len));
        }
        let report = analyze_info_states(&proto, &words).unwrap();
        // Message width must NOT grow with n for an O(n) protocol.
        assert_eq!(report.max_message_bits, proto.state_bits() as usize);
    }

    #[test]
    fn nonregular_protocol_message_width_grows() {
        let proto = ThreeCounters::new();
        let sigma = proto.language().alphabet().clone();
        let small: Vec<Word> = vec![Word::from_str("012", &sigma).unwrap()];
        let large: Vec<Word> =
            vec![Word::from_str(&("0".repeat(40) + &"1".repeat(40) + &"2".repeat(40)), &sigma)
                .unwrap()];
        let small_report = analyze_info_states(&proto, &small).unwrap();
        let large_report = analyze_info_states(&proto, &large).unwrap();
        assert!(
            large_report.max_message_bits > small_report.max_message_bits,
            "small {small_report:?} large {large_report:?}"
        );
    }

    #[test]
    fn multiplicity_bound_holds_exhaustively_for_anbncn() {
        // The Theorem 4 statement, verified over every word of length ≤ 6
        // on the three-letter alphabet (3^6 = 729 executions).
        let proto = ThreeCounters::new();
        let sigma = proto.language().alphabet().clone();
        let mut words = Vec::new();
        for len in 1..=6usize {
            words.extend(exhaustive_words(&sigma, len));
        }
        let report = analyze_info_states(&proto, &words).unwrap();
        assert!(
            report.max_multiplicity_on_shortest_witness <= 2,
            "cut-and-splice bound violated: {report:?}"
        );
        // Distinct states must outnumber what constant-width messages
        // could distinguish.
        assert!(report.bits_to_distinguish >= 4, "{report:?}");
    }
}
