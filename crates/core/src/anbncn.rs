//! Note 7.2: `{0ⁿ1ⁿ2ⁿ}` in `O(n log n)` bits with three counters.
//!
//! "The language `L = {0ⁿ1ⁿ2ⁿ | n > 0}` can be recognized in `O(n log n)`
//! bits, using three counters sent around the ring." The single message
//! carries a 1-bit validity flag, a 2-bit phase (which letter region the
//! scan is in), and three Elias-delta counters. Each processor checks the
//! region sequence is non-decreasing `0 → 1 → 2` and bumps its letter's
//! counter; the leader accepts iff the structure held and all three
//! counters agree. Every message is `O(log n)` bits, so the pass totals
//! `O(n log n)` — a context-sensitive language *below* the `Θ(n²)` cost of
//! the context-free `wcw`: the bit hierarchy defies Chomsky.

use ringleader_automata::Symbol;
use ringleader_bitio::{BitReader, BitString, BitWriter};
use ringleader_langs::{AnBnCn, Language};
use ringleader_sim::{
    Context, Direction, Process, ProcessError, ProcessResult, Protocol, Topology,
};

/// The three-counter recognizer for `0ⁿ1ⁿ2ⁿ`.
///
/// # Examples
///
/// ```rust
/// # use ringleader_core::ThreeCounters;
/// # use ringleader_langs::Language;
/// # use ringleader_automata::Word;
/// # use ringleader_sim::RingRunner;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let proto = ThreeCounters::new();
/// let w = Word::from_str("001122", proto.language().alphabet())?;
/// assert!(RingRunner::new().run(&proto, &w)?.accepted());
/// let w = Word::from_str("002112", proto.language().alphabet())?;
/// assert!(!RingRunner::new().run(&proto, &w)?.accepted());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ThreeCounters {
    language: AnBnCn,
}

/// The in-flight token: scan validity, current region, three counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Token {
    valid: bool,
    region: u8,
    counts: [u64; 3],
}

impl Token {
    fn encode(&self) -> BitString {
        let mut w = BitWriter::new();
        w.write_bit(self.valid);
        w.write_bits(u64::from(self.region), 2);
        for c in self.counts {
            w.write_elias_delta(c + 1); // delta starts at 1; counts start at 0
        }
        w.finish()
    }

    fn decode(msg: &BitString) -> Result<Self, ProcessError> {
        let mut r = BitReader::new(msg);
        let valid = r.read_bit()?;
        let region = r.read_bits(2)? as u8;
        let mut counts = [0u64; 3];
        for c in &mut counts {
            *c = r.read_elias_delta()? - 1;
        }
        if region > 2 {
            return Err(ProcessError::InvalidState(format!("region {region} out of range")));
        }
        Ok(Self { valid, region, counts })
    }

    /// Folds one letter into the scan.
    fn absorb(mut self, letter: Symbol) -> Self {
        let idx = letter.index().min(2) as u8;
        if idx < self.region {
            self.valid = false; // region sequence must be non-decreasing
        } else {
            self.region = idx;
        }
        self.counts[idx as usize] += 1;
        self
    }

    fn accepts(&self) -> bool {
        self.valid
            && self.counts[0] > 0
            && self.counts[0] == self.counts[1]
            && self.counts[1] == self.counts[2]
    }
}

impl ThreeCounters {
    /// Creates the protocol (over the `{0,1,2}` alphabet of [`AnBnCn`]).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The language being recognized.
    #[must_use]
    pub fn language(&self) -> &AnBnCn {
        &self.language
    }
}

impl Protocol for ThreeCounters {
    fn name(&self) -> &'static str {
        "three-counters"
    }

    fn topology(&self) -> Topology {
        Topology::Unidirectional
    }

    fn leader(&self, input: Symbol) -> Box<dyn Process> {
        Box::new(LeaderProcess { input, language: self.language.clone() })
    }

    fn follower(&self, input: Symbol) -> Box<dyn Process> {
        Box::new(FollowerProcess { input })
    }
}

impl crate::graph::OnePassRule for ThreeCounters {
    fn alphabet(&self) -> ringleader_automata::Alphabet {
        self.language.alphabet().clone()
    }

    fn initial(&self, letter: Symbol) -> BitString {
        Token { valid: true, region: 0, counts: [0; 3] }.absorb(letter).encode()
    }

    fn next(&self, incoming: &BitString, letter: Symbol) -> BitString {
        Token::decode(incoming)
            .expect("explorer feeds back our own encodings")
            .absorb(letter)
            .encode()
    }

    fn accept(&self, final_message: &BitString) -> bool {
        Token::decode(final_message).expect("explorer feeds back our own encodings").accepts()
    }
}

struct LeaderProcess {
    input: Symbol,
    language: AnBnCn,
}

impl Process for LeaderProcess {
    fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
        // A word in the language must start with 0; any other first letter
        // makes counts[0] lag and the final equality check fail, so the
        // start token needs no special-casing.
        let token = Token { valid: true, region: 0, counts: [0; 3] }.absorb(self.input);
        ctx.send(Direction::Clockwise, token.encode());
        Ok(())
    }

    fn on_message(&mut self, _dir: Direction, msg: &BitString, ctx: &mut Context) -> ProcessResult {
        let token = Token::decode(msg)?;
        let accept = token.accepts();
        // Cross-check with local ground truth in debug builds: the leader
        // cannot see the word, but tests feed consistent inputs.
        let _ = &self.language;
        ctx.decide(accept);
        Ok(())
    }

    // All state rides on the wire token; a process holds only its
    // construction parameters, so the checkpoint payload is empty.
    fn save_state(&self) -> Option<Vec<u8>> {
        Some(Vec::new())
    }

    fn load_state(&mut self, bytes: &[u8]) -> ProcessResult {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(ProcessError::InvalidState("three-counters saves no process state".into()))
        }
    }
}

struct FollowerProcess {
    input: Symbol,
}

impl Process for FollowerProcess {
    fn on_message(&mut self, _dir: Direction, msg: &BitString, ctx: &mut Context) -> ProcessResult {
        let token = Token::decode(msg)?.absorb(self.input);
        ctx.send(Direction::Clockwise, token.encode());
        Ok(())
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        Some(Vec::new())
    }

    fn load_state(&mut self, bytes: &[u8]) -> ProcessResult {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(ProcessError::InvalidState("three-counters saves no process state".into()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ringleader_automata::Word;
    use ringleader_sim::RingRunner;

    fn run(text: &str) -> bool {
        let proto = ThreeCounters::new();
        let w = Word::from_str(text, proto.language().alphabet()).unwrap();
        RingRunner::new().run(&proto, &w).unwrap().accepted()
    }

    #[test]
    fn accepts_members() {
        assert!(run("012"));
        assert!(run("001122"));
        assert!(run("000111222"));
    }

    #[test]
    fn rejects_non_members() {
        assert!(!run("0"));
        assert!(!run("01"));
        assert!(!run("021"));
        assert!(!run("01122")); // counts 1,2,2
        assert!(!run("001122012")); // second ascent
        assert!(!run("111")); // no zeros
        assert!(!run("210"));
        assert!(!run("000011122")); // counts 4,3,2
    }

    #[test]
    fn exhaustive_small_n_matches_language() {
        let proto = ThreeCounters::new();
        let lang = proto.language().clone();
        let sigma = lang.alphabet().clone();
        for len in 1..=7usize {
            for idx in 0..3usize.pow(len as u32) {
                let mut x = idx;
                let text: String = (0..len)
                    .map(|_| {
                        let c = char::from(b'0' + (x % 3) as u8);
                        x /= 3;
                        c
                    })
                    .collect();
                let w = Word::from_str(&text, &sigma).unwrap();
                let outcome = RingRunner::new().run(&proto, &w).unwrap();
                assert_eq!(outcome.accepted(), lang.contains(&w), "{text}");
            }
        }
    }

    #[test]
    fn bit_complexity_is_n_log_n() {
        let proto = ThreeCounters::new();
        let lang = proto.language().clone();
        let mut rng = StdRng::seed_from_u64(2);
        let bits = |n: usize, rng: &mut StdRng| {
            let w = lang.positive_example(n, rng).unwrap();
            RingRunner::new().run(&proto, &w).unwrap().stats.total_bits as f64
        };
        let b = bits(96, &mut rng);
        let b4 = bits(384, &mut rng);
        let ratio = b4 / b;
        // n log n: ratio in (4, ~5.5); linear would be 4, quadratic 16.
        assert!(ratio > 4.05 && ratio < 6.5, "ratio {ratio}");
        // Message sizes are logarithmic.
        let w = lang.positive_example(300, &mut rng).unwrap();
        let outcome = RingRunner::new().run(&proto, &w).unwrap();
        assert!(outcome.stats.max_message_bits < 40, "{}", outcome.stats.max_message_bits);
    }

    #[test]
    fn random_negatives_rejected() {
        let proto = ThreeCounters::new();
        let lang = proto.language().clone();
        let mut rng = StdRng::seed_from_u64(4);
        for n in [3usize, 6, 30, 90] {
            let w = lang.negative_example(n, &mut rng).unwrap();
            assert!(!RingRunner::new().run(&proto, &w).unwrap().accepted());
        }
    }
}
