//! A one-counter protocol for the Dyck language — the context-free
//! resident of the `Θ(n log n)` tier.
//!
//! Note 7.2 places the context-sensitive `0ⁿ1ⁿ2ⁿ` at `O(n log n)` bits;
//! the same counter technique handles the context-free Dyck language of
//! balanced parentheses with a *single* counter: the token carries the
//! current nesting depth (Elias delta) plus a 1-bit "went negative" flag.
//! The leader accepts iff the depth returns to zero and never dipped
//! below. Messages are `O(log n)` bits ⇒ `O(n log n)` total — filling in
//! the picture that the `n log n` tier hosts *every* Chomsky class above
//! regular, which is exactly the paper's point that the bit hierarchy and
//! the Chomsky hierarchy are unrelated.

use ringleader_automata::Symbol;
use ringleader_bitio::{BitReader, BitString, BitWriter};
use ringleader_langs::{Dyck, Language};
use ringleader_sim::{
    Context, Direction, Process, ProcessError, ProcessResult, Protocol, Topology,
};

/// The one-counter recognizer for balanced parentheses.
///
/// # Examples
///
/// ```rust
/// # use ringleader_core::DyckCounter;
/// # use ringleader_langs::Language;
/// # use ringleader_automata::Word;
/// # use ringleader_sim::RingRunner;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let proto = DyckCounter::new();
/// let w = Word::from_str("(()())", proto.language().alphabet())?;
/// assert!(RingRunner::new().run(&proto, &w)?.accepted());
/// let w = Word::from_str(")(", proto.language().alphabet())?;
/// assert!(!RingRunner::new().run(&proto, &w)?.accepted());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct DyckCounter {
    language: Dyck,
}

/// The circulating token: current depth and a sticky underflow flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Token {
    depth: u64,
    underflowed: bool,
}

impl Token {
    fn encode(&self) -> BitString {
        let mut w = BitWriter::new();
        w.write_bit(self.underflowed);
        w.write_elias_delta(self.depth + 1);
        w.finish()
    }

    fn decode(msg: &BitString) -> Result<Self, ProcessError> {
        let mut r = BitReader::new(msg);
        let underflowed = r.read_bit()?;
        let depth = r.read_elias_delta()? - 1;
        Ok(Self { depth, underflowed })
    }

    fn absorb(mut self, letter: Symbol) -> Self {
        if letter.index() == 0 {
            self.depth += 1;
        } else if self.depth == 0 {
            self.underflowed = true;
        } else {
            self.depth -= 1;
        }
        self
    }

    fn accepts(&self) -> bool {
        !self.underflowed && self.depth == 0
    }
}

impl DyckCounter {
    /// Creates the protocol over the `{(, )}` alphabet of [`Dyck`].
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The language being recognized.
    #[must_use]
    pub fn language(&self) -> &Dyck {
        &self.language
    }
}

impl crate::graph::OnePassRule for DyckCounter {
    fn alphabet(&self) -> ringleader_automata::Alphabet {
        self.language.alphabet().clone()
    }

    fn initial(&self, letter: Symbol) -> BitString {
        Token { depth: 0, underflowed: false }.absorb(letter).encode()
    }

    fn next(&self, incoming: &BitString, letter: Symbol) -> BitString {
        Token::decode(incoming)
            .expect("explorer feeds back our own encodings")
            .absorb(letter)
            .encode()
    }

    fn accept(&self, final_message: &BitString) -> bool {
        Token::decode(final_message).expect("explorer feeds back our own encodings").accepts()
    }

    fn accept_empty(&self) -> bool {
        true // ε is balanced
    }
}

impl Protocol for DyckCounter {
    fn name(&self) -> &'static str {
        "dyck-counter"
    }

    fn topology(&self) -> Topology {
        Topology::Unidirectional
    }

    fn leader(&self, input: Symbol) -> Box<dyn Process> {
        Box::new(LeaderProcess { input })
    }

    fn follower(&self, input: Symbol) -> Box<dyn Process> {
        Box::new(FollowerProcess { input })
    }
}

struct LeaderProcess {
    input: Symbol,
}

impl Process for LeaderProcess {
    fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
        let token = Token { depth: 0, underflowed: false }.absorb(self.input);
        ctx.send(Direction::Clockwise, token.encode());
        Ok(())
    }

    fn on_message(&mut self, _dir: Direction, msg: &BitString, ctx: &mut Context) -> ProcessResult {
        ctx.decide(Token::decode(msg)?.accepts());
        Ok(())
    }
}

struct FollowerProcess {
    input: Symbol,
}

impl Process for FollowerProcess {
    fn on_message(&mut self, _dir: Direction, msg: &BitString, ctx: &mut Context) -> ProcessResult {
        let token = Token::decode(msg)?.absorb(self.input);
        ctx.send(Direction::Clockwise, token.encode());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ringleader_automata::Word;
    use ringleader_sim::RingRunner;

    fn run(text: &str) -> bool {
        let proto = DyckCounter::new();
        let w = Word::from_str(text, proto.language().alphabet()).unwrap();
        RingRunner::new().run(&proto, &w).unwrap().accepted()
    }

    #[test]
    fn accepts_balanced() {
        assert!(run("()"));
        assert!(run("(())"));
        assert!(run("()()"));
        assert!(run("(()(()))"));
    }

    #[test]
    fn rejects_unbalanced() {
        assert!(!run("("));
        assert!(!run(")"));
        assert!(!run(")("));
        assert!(!run("(()"));
        assert!(!run("())"));
        assert!(!run("())(")); // must catch underflow even if depth recovers
    }

    #[test]
    fn exhaustive_small_n_matches_language() {
        let proto = DyckCounter::new();
        let lang = proto.language().clone();
        let sigma = lang.alphabet().clone();
        for len in 1..=10usize {
            for idx in 0..(1usize << len) {
                let symbols: Vec<Symbol> =
                    (0..len).map(|i| Symbol(((idx >> i) & 1) as u16)).collect();
                let w = Word::from_symbols(symbols);
                let outcome = RingRunner::new().run(&proto, &w).unwrap();
                assert_eq!(outcome.accepted(), lang.contains(&w), "{}", w.render(&sigma));
            }
        }
    }

    #[test]
    fn bit_complexity_is_n_log_n() {
        let proto = DyckCounter::new();
        let lang = proto.language().clone();
        let mut rng = StdRng::seed_from_u64(6);
        // Deep nesting maximizes the counter, hence worst-case bits.
        let deep = |n: usize| {
            let text = "(".repeat(n / 2) + &")".repeat(n / 2);
            Word::from_str(&text, lang.alphabet()).unwrap()
        };
        let b256 = RingRunner::new().run(&proto, &deep(256)).unwrap().stats.total_bits;
        let b1024 = RingRunner::new().run(&proto, &deep(1024)).unwrap().stats.total_bits;
        let ratio = b1024 as f64 / b256 as f64;
        assert!(ratio > 4.05 && ratio < 6.0, "{ratio}");
        // Random balanced words decide correctly too.
        for n in [2usize, 10, 100] {
            let w = lang.positive_example(n, &mut rng).unwrap();
            assert!(RingRunner::new().run(&proto, &w).unwrap().accepted());
            let w = lang.negative_example(n, &mut rng).unwrap();
            assert!(!RingRunner::new().run(&proto, &w).unwrap().accepted());
        }
    }

    #[test]
    fn message_graph_diverges() {
        // One counter still means infinitely many messages (Corollary 1).
        use crate::{GraphOutcome, MessageGraphExplorer};
        match MessageGraphExplorer::new(600).explore(&DyckCounter::new()) {
            GraphOutcome::Exceeded { growth, .. } => {
                // Depth d is reachable at BFS depth d: linear-ish growth.
                assert!(growth.last().unwrap() > &600);
            }
            GraphOutcome::Finite { .. } => panic!("dyck counter is unbounded"),
        }
    }
}
