//! The trivial `O(n²)` upper bound: collect everything at the leader.
//!
//! "The leader can obtain all the information about all the processors in
//! `O(n²)` bits, giving a trivial upper bound for the computation of every
//! function" (§1). The message grows by one letter per hop, so the total is
//! `⌈log|Σ|⌉·(1 + 2 + … + n) = Θ(n²)` bits. This protocol is the baseline
//! every specialized algorithm is benchmarked against.

use std::sync::Arc;

use ringleader_automata::{Symbol, Word};
use ringleader_bitio::{bits_for, BitReader, BitString, BitWriter};
use ringleader_langs::Language;
use ringleader_sim::{Context, Direction, Process, ProcessResult, Protocol, Topology};

/// The collect-all protocol: one pass, message `i` carries the first `i`
/// letters; the leader reconstructs `w` and decides membership locally.
///
/// Works for **any** language (the decision is a local membership check),
/// at the paper's trivial `Θ(n²)` bit cost.
///
/// # Examples
///
/// ```rust
/// # use ringleader_core::CollectAll;
/// # use ringleader_langs::Language;
/// # use ringleader_langs::AnBn;
/// # use ringleader_automata::Word;
/// # use ringleader_sim::RingRunner;
/// # use std::sync::Arc;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lang = Arc::new(AnBn::new());
/// let proto = CollectAll::new(lang.clone());
/// let w = Word::from_str("aabb", lang.alphabet())?;
/// let outcome = RingRunner::new().run(&proto, &w)?;
/// assert!(outcome.accepted());
/// // 1 bit/letter × (1+2+3+4) letters shipped = 10 bits.
/// assert_eq!(outcome.stats.total_bits, 10);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct CollectAll {
    language: Arc<dyn Language>,
    letter_bits: u32,
}

impl CollectAll {
    /// Builds the baseline recognizer for `language`.
    #[must_use]
    pub fn new(language: Arc<dyn Language>) -> Self {
        let letter_bits = bits_for(language.alphabet().len());
        Self { language, letter_bits }
    }

    /// The exact bit complexity on a ring of `n` processors:
    /// `⌈log|Σ|⌉ · n(n+1)/2`.
    #[must_use]
    pub fn predicted_bits(&self, n: usize) -> usize {
        self.letter_bits as usize * n * (n + 1) / 2
    }

    fn append(&self, prefix: &BitString, letter: Symbol) -> BitString {
        let mut w = BitWriter::new();
        w.write_bitstring(prefix);
        w.write_bits(letter.index() as u64, self.letter_bits);
        w.finish()
    }

    fn decode(&self, msg: &BitString) -> Result<Word, ringleader_bitio::DecodeError> {
        let mut r = BitReader::new(msg);
        let mut word = Word::new();
        while !r.is_at_end() {
            let v = r.read_bits(self.letter_bits)?;
            word.push(Symbol(v as u16));
        }
        Ok(word)
    }
}

impl std::fmt::Debug for CollectAll {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CollectAll")
            .field("language", &self.language.name())
            .field("letter_bits", &self.letter_bits)
            .finish()
    }
}

impl Protocol for CollectAll {
    fn name(&self) -> &'static str {
        "collect-all"
    }

    fn topology(&self) -> Topology {
        Topology::Unidirectional
    }

    fn leader(&self, input: Symbol) -> Box<dyn Process> {
        Box::new(LeaderProcess { proto: self.clone(), input })
    }

    fn follower(&self, input: Symbol) -> Box<dyn Process> {
        Box::new(FollowerProcess { proto: self.clone(), input })
    }
}

struct LeaderProcess {
    proto: CollectAll,
    input: Symbol,
}

impl Process for LeaderProcess {
    fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
        ctx.send(Direction::Clockwise, self.proto.append(&BitString::new(), self.input));
        Ok(())
    }

    fn on_message(&mut self, _dir: Direction, msg: &BitString, ctx: &mut Context) -> ProcessResult {
        let word = self.proto.decode(msg)?;
        ctx.decide(self.proto.language.contains(&word));
        Ok(())
    }
}

struct FollowerProcess {
    proto: CollectAll,
    input: Symbol,
}

impl Process for FollowerProcess {
    fn on_message(&mut self, _dir: Direction, msg: &BitString, ctx: &mut Context) -> ProcessResult {
        ctx.send(Direction::Clockwise, self.proto.append(msg, self.input));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ringleader_langs::{AnBn, AnBnCn, Palindrome, WcW};
    use ringleader_sim::RingRunner;

    fn check_language(lang: Arc<dyn Language>, lengths: &[usize]) {
        let proto = CollectAll::new(lang.clone());
        let mut rng = StdRng::seed_from_u64(5);
        for &n in lengths {
            for want in [true, false] {
                let Some(w) = (if want {
                    lang.positive_example(n, &mut rng)
                } else {
                    lang.negative_example(n, &mut rng)
                }) else {
                    continue;
                };
                let outcome = RingRunner::new().run(&proto, &w).unwrap();
                assert_eq!(outcome.accepted(), want, "{} n={n}", lang.name());
                assert_eq!(
                    outcome.stats.total_bits,
                    proto.predicted_bits(n),
                    "{} n={n}",
                    lang.name()
                );
            }
        }
    }

    #[test]
    fn recognizes_anbn() {
        check_language(Arc::new(AnBn::new()), &[2, 4, 9, 16]);
    }

    #[test]
    fn recognizes_anbncn() {
        check_language(Arc::new(AnBnCn::new()), &[3, 7, 12, 30]);
    }

    #[test]
    fn recognizes_wcw() {
        check_language(Arc::new(WcW::new()), &[1, 3, 9, 21]);
    }

    #[test]
    fn recognizes_palindromes() {
        check_language(Arc::new(Palindrome::new()), &[2, 5, 8, 20]);
    }

    #[test]
    fn growth_is_quadratic() {
        let lang = Arc::new(AnBn::new());
        let proto = CollectAll::new(lang.clone());
        let mut rng = StdRng::seed_from_u64(1);
        let b10 = {
            let w = lang.positive_example(10, &mut rng).unwrap();
            RingRunner::new().run(&proto, &w).unwrap().stats.total_bits
        };
        let b40 = {
            let w = lang.positive_example(40, &mut rng).unwrap();
            RingRunner::new().run(&proto, &w).unwrap().stats.total_bits
        };
        // Quadrupling n should ~16× the bits (here exactly, by formula).
        assert_eq!(b10, proto.predicted_bits(10));
        assert_eq!(b40, proto.predicted_bits(40));
        assert!(b40 > 14 * b10 && b40 < 18 * b10);
    }

    #[test]
    fn message_sizes_grow_linearly() {
        let lang = Arc::new(AnBn::new());
        let proto = CollectAll::new(lang);
        let sigma = Alphabet::from_chars("ab").unwrap();
        let w = Word::from_str("aaabbb", &sigma).unwrap();
        let outcome = RingRunner::new().run(&proto, &w).unwrap();
        // Largest message carries all 6 letters at 1 bit each.
        assert_eq!(outcome.stats.max_message_bits, 6);
    }

    use ringleader_automata::Alphabet;
}
