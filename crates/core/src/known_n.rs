//! Note 7.4: when `n` is known, the `Ω(n log n)` barrier falls.
//!
//! "From our results it follows that only regular languages can be
//! recognized without the knowledge of `n` [in `O(n)` bits] … If `n` is
//! known then no gap exists … there are in this case non-regular languages
//! that can be recognized in `O(n)` bits."
//!
//! [`LengthPredicateKnownN`] is the witness: for a language
//! `{ σᵐ : P(m) }` (a "length language" such as `{a^{2^k}}`, non-regular
//! whenever `P` is not eventually periodic), the leader — knowing `n` —
//! evaluates `P(n)` locally and spends exactly one 1-bit-per-hop validity
//! pass confirming every processor holds `σ`. Total: exactly `n` bits for
//! a non-regular language. With `n` unknown the same language costs
//! `Θ(n log n)` via [`CountRingSize`](crate::CountRingSize) — the tests
//! measure both sides of the gap.

use std::sync::Arc;

use ringleader_automata::Symbol;
use ringleader_bitio::{BitReader, BitString, BitWriter};
use ringleader_sim::{
    Context, Direction, Process, ProcessError, ProcessResult, Protocol, Topology,
};

use crate::counting::LengthPredicate;

/// Known-`n` recognizer for length languages `{ σⁿ : P(n) }` in exactly
/// `n` bits.
///
/// Must be run with [`RingRunner::known_ring_size`] enabled; it returns
/// [`ProcessError::InvalidState`] otherwise.
///
/// [`RingRunner::known_ring_size`]: ringleader_sim::RingRunner::known_ring_size
///
/// # Examples
///
/// ```rust
/// # use ringleader_core::LengthPredicateKnownN;
/// # use ringleader_automata::{Alphabet, Symbol, Word};
/// # use ringleader_sim::RingRunner;
/// # use std::sync::Arc;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let proto = LengthPredicateKnownN::new(Symbol(0), Arc::new(|n| n.is_power_of_two()));
/// let sigma = Alphabet::from_chars("a")?;
/// let mut runner = RingRunner::new();
/// runner.known_ring_size(true);
/// let w = Word::from_str(&"a".repeat(16), &sigma)?;
/// let outcome = runner.run(&proto, &w)?;
/// assert!(outcome.accepted());
/// assert_eq!(outcome.stats.total_bits, 16); // exactly n bits
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct LengthPredicateKnownN {
    expected: Symbol,
    predicate: LengthPredicate,
}

impl LengthPredicateKnownN {
    /// Builds the recognizer: every processor must hold `expected`, and
    /// the ring size must satisfy `predicate`.
    #[must_use]
    pub fn new(expected: Symbol, predicate: LengthPredicate) -> Self {
        Self { expected, predicate }
    }

    /// Exact bit complexity: `n` (one validity bit per hop).
    #[must_use]
    pub fn predicted_bits(n: usize) -> usize {
        n
    }
}

impl std::fmt::Debug for LengthPredicateKnownN {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LengthPredicateKnownN")
            .field("expected", &self.expected)
            .finish_non_exhaustive()
    }
}

impl Protocol for LengthPredicateKnownN {
    fn name(&self) -> &'static str {
        "length-predicate-known-n"
    }

    fn topology(&self) -> Topology {
        Topology::Unidirectional
    }

    fn leader(&self, input: Symbol) -> Box<dyn Process> {
        Box::new(LeaderProcess {
            expected: self.expected,
            predicate: Arc::clone(&self.predicate),
            input,
        })
    }

    fn follower(&self, input: Symbol) -> Box<dyn Process> {
        Box::new(FollowerProcess { expected: self.expected, input })
    }
}

struct LeaderProcess {
    expected: Symbol,
    predicate: LengthPredicate,
    input: Symbol,
}

impl Process for LeaderProcess {
    fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
        if ctx.known_ring_size().is_none() {
            return Err(ProcessError::InvalidState(
                "LengthPredicateKnownN requires the known-ring-size mode".into(),
            ));
        }
        let mut w = BitWriter::new();
        w.write_bit(self.input == self.expected);
        ctx.send(Direction::Clockwise, w.finish());
        Ok(())
    }

    fn on_message(&mut self, _dir: Direction, msg: &BitString, ctx: &mut Context) -> ProcessResult {
        let valid = BitReader::new(msg).read_bit()?;
        let n = ctx
            .known_ring_size()
            .ok_or_else(|| ProcessError::InvalidState("ring size vanished".into()))?;
        ctx.decide(valid && (self.predicate)(n));
        Ok(())
    }
}

struct FollowerProcess {
    expected: Symbol,
    input: Symbol,
}

impl Process for FollowerProcess {
    fn on_message(&mut self, _dir: Direction, msg: &BitString, ctx: &mut Context) -> ProcessResult {
        let valid = BitReader::new(msg).read_bit()? && self.input == self.expected;
        let mut w = BitWriter::new();
        w.write_bit(valid);
        ctx.send(Direction::Clockwise, w.finish());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CountRingSize;
    use ringleader_automata::{Alphabet, Word};
    use ringleader_sim::{RingRunner, SimError};

    fn unary(n: usize) -> Word {
        Word::from_str(&"a".repeat(n), &Alphabet::from_chars("a").unwrap()).unwrap()
    }

    fn known_runner() -> RingRunner {
        let mut r = RingRunner::new();
        r.known_ring_size(true);
        r
    }

    #[test]
    fn recognizes_powers_of_two_in_exactly_n_bits() {
        let proto = LengthPredicateKnownN::new(Symbol(0), Arc::new(|n| n.is_power_of_two()));
        for n in 1..=33usize {
            let outcome = known_runner().run(&proto, &unary(n)).unwrap();
            assert_eq!(outcome.accepted(), n.is_power_of_two(), "n={n}");
            assert_eq!(outcome.stats.total_bits, n, "n={n}");
            assert_eq!(outcome.stats.message_count, n);
            assert_eq!(outcome.stats.max_message_bits, 1);
        }
    }

    #[test]
    fn rejects_wrong_letters() {
        let sigma = Alphabet::from_chars("ab").unwrap();
        let proto = LengthPredicateKnownN::new(
            sigma.symbol('a').unwrap(),
            Arc::new(|n| n.is_power_of_two()),
        );
        let w = Word::from_str("aaba", &sigma).unwrap();
        assert!(!known_runner().run(&proto, &w).unwrap().accepted());
        let w = Word::from_str("aaaa", &sigma).unwrap();
        assert!(known_runner().run(&proto, &w).unwrap().accepted());
    }

    #[test]
    fn refuses_to_run_without_known_n() {
        let proto = LengthPredicateKnownN::new(Symbol(0), Arc::new(|_| true));
        let err = RingRunner::new().run(&proto, &unary(4)).unwrap_err();
        assert!(matches!(err, SimError::Process { position: 0, .. }));
    }

    #[test]
    fn gap_versus_unknown_n() {
        // The same language with n unknown costs Θ(n log n) via counting;
        // with n known it costs exactly n — the Note 7.4 gap, measured.
        let n = 1024usize;
        let known = LengthPredicateKnownN::new(Symbol(0), Arc::new(|n| n.is_power_of_two()));
        let unknown = CountRingSize::new(Arc::new(|n| n.is_power_of_two()));
        let known_bits = known_runner().run(&known, &unary(n)).unwrap().stats.total_bits;
        let unknown_bits = RingRunner::new().run(&unknown, &unary(n)).unwrap().stats.total_bits;
        assert_eq!(known_bits, n);
        assert!(
            unknown_bits as f64 > 5.0 * known_bits as f64,
            "expected a large gap: known {known_bits}, unknown {unknown_bits}"
        );
        // Both decide correctly.
        assert!(known_runner().run(&known, &unary(n)).unwrap().accepted());
        assert!(RingRunner::new().run(&unknown, &unary(n)).unwrap().accepted());
    }
}
