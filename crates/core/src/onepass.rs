//! Theorem 1: one-pass recognition of regular languages in `O(n)` bits.
//!
//! Every processor holds a copy of a finite automaton `FA = (Q, Σ, δ, q₀, F)`.
//! The leader sends `q₁ = δ(q₀, σ₁)`; processor `pᵢ` receives `qᵢ₋₁` and
//! forwards `qᵢ = δ(qᵢ₋₁, σᵢ)`. After one pass the leader holds
//! `qₙ = δ(q₀, w)` and accepts iff `qₙ ∈ F`. Each message is one state id:
//! exactly `⌈log₂ |Q|⌉` bits, `n` messages, `BIT_A(n) = n·⌈log₂ |Q|⌉ = O(n)`.

use std::sync::Arc;

use ringleader_automata::{Dfa, StateId, Symbol};
use ringleader_bitio::{bits_for, BitReader, BitString, BitWriter};
use ringleader_langs::DfaLanguage;
use ringleader_sim::{
    Context, Direction, Process, ProcessError, ProcessResult, Protocol, Topology,
};

/// The Theorem 1 protocol: unidirectional, one pass, `⌈log |Q|⌉` bits per
/// message.
///
/// Always runs the *minimized* automaton, making the per-message width the
/// best possible for the state-forwarding strategy.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct DfaOnePass {
    dfa: Arc<Dfa>,
    state_bits: u32,
}

impl DfaOnePass {
    /// Builds the protocol for a regular language.
    #[must_use]
    pub fn new(language: &DfaLanguage) -> Self {
        Self::from_dfa(language.dfa())
    }

    /// Builds the protocol from an explicit automaton (minimized first).
    #[must_use]
    pub fn from_dfa(dfa: &Dfa) -> Self {
        let dfa = dfa.minimized();
        let state_bits = bits_for(dfa.state_count());
        Self { dfa: Arc::new(dfa), state_bits }
    }

    /// Bits per message: `⌈log₂ |Q|⌉`.
    #[must_use]
    pub fn state_bits(&self) -> u32 {
        self.state_bits
    }

    /// The exact bit complexity on a ring of `n` processors:
    /// `n·⌈log₂ |Q|⌉`.
    #[must_use]
    pub fn predicted_bits(&self, n: usize) -> usize {
        n * self.state_bits as usize
    }

    fn encode(&self, state: StateId) -> BitString {
        let mut w = BitWriter::new();
        w.write_bits(u64::from(state.0), self.state_bits);
        w.finish()
    }

    fn decode(&self, msg: &BitString) -> Result<StateId, ringleader_bitio::DecodeError> {
        let mut r = BitReader::new(msg);
        let v = r.read_bits(self.state_bits)?;
        Ok(StateId(v as u32))
    }
}

impl Protocol for DfaOnePass {
    fn name(&self) -> &'static str {
        "dfa-one-pass"
    }

    fn topology(&self) -> Topology {
        Topology::Unidirectional
    }

    fn leader(&self, input: Symbol) -> Box<dyn Process> {
        Box::new(LeaderProcess { proto: self.clone(), input })
    }

    fn follower(&self, input: Symbol) -> Box<dyn Process> {
        Box::new(FollowerProcess { proto: self.clone(), input })
    }
}

impl crate::graph::OnePassRule for DfaOnePass {
    fn alphabet(&self) -> ringleader_automata::Alphabet {
        self.dfa.alphabet().clone()
    }

    fn initial(&self, letter: Symbol) -> BitString {
        self.encode(self.dfa.step(self.dfa.start(), letter))
    }

    fn next(&self, incoming: &BitString, letter: Symbol) -> BitString {
        let q = self.decode(incoming).expect("explorer feeds back our own encodings");
        self.encode(self.dfa.step(q, letter))
    }

    fn accept(&self, final_message: &BitString) -> bool {
        let q = self.decode(final_message).expect("explorer feeds back our own encodings");
        self.dfa.is_accepting(q)
    }

    fn accept_empty(&self) -> bool {
        self.dfa.is_accepting(self.dfa.start())
    }
}

struct LeaderProcess {
    proto: DfaOnePass,
    input: Symbol,
}

impl Process for LeaderProcess {
    fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
        let q1 = self.proto.dfa.step(self.proto.dfa.start(), self.input);
        ctx.send(Direction::Clockwise, self.proto.encode(q1));
        Ok(())
    }

    fn on_message(&mut self, _dir: Direction, msg: &BitString, ctx: &mut Context) -> ProcessResult {
        let qn = self.proto.decode(msg)?;
        ctx.decide(self.proto.dfa.is_accepting(qn));
        Ok(())
    }

    // The pass state travels in the message; processes hold only their
    // construction parameters, so the checkpoint payload is empty.
    fn save_state(&self) -> Option<Vec<u8>> {
        Some(Vec::new())
    }

    fn load_state(&mut self, bytes: &[u8]) -> ProcessResult {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(ProcessError::InvalidState("dfa-one-pass saves no process state".into()))
        }
    }
}

struct FollowerProcess {
    proto: DfaOnePass,
    input: Symbol,
}

impl Process for FollowerProcess {
    fn on_message(&mut self, _dir: Direction, msg: &BitString, ctx: &mut Context) -> ProcessResult {
        let q = self.proto.decode(msg)?;
        let next = self.proto.dfa.step(q, self.input);
        ctx.send(Direction::Clockwise, self.proto.encode(next));
        Ok(())
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        Some(Vec::new())
    }

    fn load_state(&mut self, bytes: &[u8]) -> ProcessResult {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(ProcessError::InvalidState("dfa-one-pass saves no process state".into()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ringleader_automata::{Alphabet, Word};
    use ringleader_langs::{regular_corpus, Language};
    use ringleader_sim::RingRunner;

    #[test]
    fn decision_matches_language_on_corpus() {
        let mut rng = StdRng::seed_from_u64(11);
        for lang in regular_corpus() {
            let proto = DfaOnePass::new(&lang);
            for n in 1..=10usize {
                for _ in 0..6 {
                    for want in [true, false] {
                        let Some(w) = (if want {
                            lang.positive_example(n, &mut rng)
                        } else {
                            lang.negative_example(n, &mut rng)
                        }) else {
                            continue;
                        };
                        let outcome = RingRunner::new().run(&proto, &w).unwrap();
                        assert_eq!(outcome.accepted(), want, "{} on {:?}", lang.name(), w);
                    }
                }
            }
        }
    }

    #[test]
    fn bit_complexity_is_exactly_n_log_q() {
        let mut rng = StdRng::seed_from_u64(7);
        for lang in regular_corpus() {
            let proto = DfaOnePass::new(&lang);
            for n in [1usize, 2, 8, 33, 100] {
                let w = lang
                    .positive_example(n, &mut rng)
                    .or_else(|| lang.negative_example(n, &mut rng))
                    .expect("some word of every length exists");
                let outcome = RingRunner::new().run(&proto, &w).unwrap();
                assert_eq!(
                    outcome.stats.total_bits,
                    proto.predicted_bits(n),
                    "{} at n={n}",
                    lang.name()
                );
                assert_eq!(outcome.stats.message_count, n);
                assert_eq!(outcome.stats.max_message_bits, proto.state_bits() as usize);
            }
        }
    }

    #[test]
    fn exhaustive_equivalence_small_n() {
        // For every word of length <= 9 the protocol decision equals DFA
        // membership — the full Theorem 1 statement at small scale.
        let sigma = Alphabet::from_chars("ab").unwrap();
        let lang = DfaLanguage::from_regex("(a|b)*abb", &sigma).unwrap();
        let proto = DfaOnePass::new(&lang);
        for len in 1..=9usize {
            for idx in 0..(1usize << len) {
                let text: String =
                    (0..len).map(|i| if (idx >> i) & 1 == 0 { 'a' } else { 'b' }).collect();
                let w = Word::from_str(&text, &sigma).unwrap();
                let outcome = RingRunner::new().run(&proto, &w).unwrap();
                assert_eq!(outcome.accepted(), lang.contains(&w), "{text}");
            }
        }
    }

    #[test]
    fn single_state_automaton_sends_zero_bit_messages() {
        // Universal language: |Q| = 1 → 0 bits per message; the pass still
        // happens (n messages) but costs nothing.
        let sigma = Alphabet::from_chars("ab").unwrap();
        let lang = DfaLanguage::from_regex("(a|b)*", &sigma).unwrap();
        assert_eq!(lang.dfa().state_count(), 1);
        let proto = DfaOnePass::new(&lang);
        let w = Word::from_str("abba", &sigma).unwrap();
        let outcome = RingRunner::new().run(&proto, &w).unwrap();
        assert!(outcome.accepted());
        assert_eq!(outcome.stats.total_bits, 0);
        assert_eq!(outcome.stats.message_count, 4);
    }

    #[test]
    fn one_pass_uses_each_link_once() {
        let sigma = Alphabet::from_chars("ab").unwrap();
        let lang = DfaLanguage::from_regex("a*b*", &sigma).unwrap();
        let proto = DfaOnePass::new(&lang);
        let w = Word::from_str("aabb", &sigma).unwrap();
        let outcome = RingRunner::new().run(&proto, &w).unwrap();
        let per_link = proto.state_bits() as usize;
        assert!(outcome.stats.clockwise_link_bits.iter().all(|&b| b == per_link));
        assert!(outcome.stats.counter_clockwise_link_bits.iter().all(|&b| b == 0));
    }
}
