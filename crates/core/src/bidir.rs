//! Theorems 6/7: bidirectional recognition of regular languages in
//! `O(n)` bits.
//!
//! Theorem 6 observes that the unidirectional Theorem 1 algorithm already
//! gives the bidirectional upper bound. This module implements a protocol
//! that genuinely *uses* both directions — the natural "meet in the
//! middle" doubling of Theorem 1 — so the bidirectional experiments
//! exercise real two-way traffic:
//!
//! * The leader launches a **state probe** clockwise carrying
//!   `q = δ(q₀, prefix)` (`⌈log|Q|⌉` bits), and an **acceptance-function
//!   probe** counter-clockwise carrying the map
//!   `g(q) = [δ(q, suffix) ∈ F]` as a `|Q|`-bit vector (built back to
//!   front: `g_{σv}(q) = g_v(δ(q, σ))`).
//! * A processor that has already handled one probe and receives the
//!   other holds both halves: the word is accepted iff `g(q)`. It emits a
//!   1-bit **verdict** that continues in the direction the second probe
//!   was travelling, getting forwarded to the leader.
//! * Under schedules that race one probe all the way around before the
//!   other moves, the probe returns to the leader, which decides locally
//!   (`qₙ ∈ F`, or `g₂(δ(q₀,σ₁))`). Correct under *every* schedule; the
//!   tests sweep random schedulers to check exactly that.
//!
//! Every message is `O(|Q|)` bits (constant in `n`) and at most `~2n`
//! messages flow: `BIT = O(n)`, now with two-way traffic on every link.

use std::sync::Arc;

use ringleader_automata::{Dfa, StateId, Symbol};
use ringleader_bitio::{bits_for, BitReader, BitString, BitWriter};
use ringleader_langs::DfaLanguage;
use ringleader_sim::{
    Context, Direction, Process, ProcessError, ProcessResult, Protocol, Topology,
};

/// The bidirectional meet-in-the-middle recognizer.
///
/// # Examples
///
/// ```rust
/// # use ringleader_core::BidirMeetInMiddle;
/// # use ringleader_langs::DfaLanguage;
/// # use ringleader_automata::{Alphabet, Word};
/// # use ringleader_sim::RingRunner;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sigma = Alphabet::from_chars("ab")?;
/// let lang = DfaLanguage::from_regex("(ab)*", &sigma)?;
/// let proto = BidirMeetInMiddle::new(&lang);
/// let w = Word::from_str("ababab", &sigma)?;
/// assert!(RingRunner::new().run(&proto, &w)?.accepted());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BidirMeetInMiddle {
    dfa: Arc<Dfa>,
    state_bits: u32,
}

/// 2-bit message tags.
const TAG_STATE: u64 = 0b00; // clockwise state probe
const TAG_GFUNC: u64 = 0b01; // counter-clockwise acceptance-function probe
const TAG_VERDICT: u64 = 0b10; // 1-bit verdict riding to the leader

impl BidirMeetInMiddle {
    /// Builds the protocol for a regular language (minimized automaton).
    #[must_use]
    pub fn new(language: &DfaLanguage) -> Self {
        let dfa = language.dfa().minimized();
        let state_bits = bits_for(dfa.state_count());
        Self { dfa: Arc::new(dfa), state_bits }
    }

    /// Upper bound on the bit complexity: every message is at most
    /// `2 + max(⌈log|Q|⌉, |Q|)` bits and fewer than `2n + n` messages flow.
    #[must_use]
    pub fn message_bits_bound(&self) -> usize {
        2 + (self.state_bits as usize).max(self.dfa.state_count())
    }

    fn encode_state(&self, q: StateId) -> BitString {
        let mut w = BitWriter::new();
        w.write_bits(TAG_STATE, 2);
        w.write_bits(u64::from(q.0), self.state_bits);
        w.finish()
    }

    fn encode_gfunc(&self, g: &[bool]) -> BitString {
        let mut w = BitWriter::new();
        w.write_bits(TAG_GFUNC, 2);
        for &b in g {
            w.write_bit(b);
        }
        w.finish()
    }

    fn encode_verdict(accept: bool) -> BitString {
        let mut w = BitWriter::new();
        w.write_bits(TAG_VERDICT, 2);
        w.write_bit(accept);
        w.finish()
    }

    /// `g'` with `g'(q) = g(δ(q, letter))`.
    fn fold_letter(&self, g: &[bool], letter: Symbol) -> Vec<bool> {
        (0..self.dfa.state_count())
            .map(|q| g[self.dfa.step(StateId(q as u32), letter).index()])
            .collect()
    }

    fn initial_g(&self) -> Vec<bool> {
        (0..self.dfa.state_count()).map(|q| self.dfa.is_accepting(StateId(q as u32))).collect()
    }

    fn decode(&self, msg: &BitString) -> Result<Payload, ProcessError> {
        let mut r = BitReader::new(msg);
        match r.read_bits(2)? {
            TAG_STATE => Ok(Payload::State(StateId(r.read_bits(self.state_bits)? as u32))),
            TAG_GFUNC => {
                let mut g = Vec::with_capacity(self.dfa.state_count());
                for _ in 0..self.dfa.state_count() {
                    g.push(r.read_bit()?);
                }
                Ok(Payload::GFunc(g))
            }
            TAG_VERDICT => Ok(Payload::Verdict(r.read_bit()?)),
            tag => Err(ProcessError::InvalidState(format!("unknown tag {tag:#04b}"))),
        }
    }
}

enum Payload {
    State(StateId),
    GFunc(Vec<bool>),
    Verdict(bool),
}

impl Protocol for BidirMeetInMiddle {
    fn name(&self) -> &'static str {
        "bidir-meet-in-middle"
    }

    fn topology(&self) -> Topology {
        Topology::Bidirectional
    }

    fn leader(&self, input: Symbol) -> Box<dyn Process> {
        Box::new(LeaderProcess { proto: self.clone(), input })
    }

    fn follower(&self, input: Symbol) -> Box<dyn Process> {
        Box::new(FollowerProcess {
            proto: self.clone(),
            input,
            state_seen: None,
            gfunc_seen: None,
            verdict_sent: false,
        })
    }
}

struct LeaderProcess {
    proto: BidirMeetInMiddle,
    input: Symbol,
}

impl Process for LeaderProcess {
    fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
        let q1 = self.proto.dfa.step(self.proto.dfa.start(), self.input);
        ctx.send(Direction::Clockwise, self.proto.encode_state(q1));
        ctx.send(Direction::CounterClockwise, self.proto.encode_gfunc(&self.proto.initial_g()));
        Ok(())
    }

    fn on_message(&mut self, _dir: Direction, msg: &BitString, ctx: &mut Context) -> ProcessResult {
        match self.proto.decode(msg)? {
            // State probe went full circle: it carries δ(q₀, w).
            Payload::State(qn) => ctx.decide(self.proto.dfa.is_accepting(qn)),
            // g-probe went full circle: it carries g for the suffix
            // σ₂…σₙ; combine with the local first letter.
            Payload::GFunc(g) => {
                let q1 = self.proto.dfa.step(self.proto.dfa.start(), self.input);
                ctx.decide(g[q1.index()]);
            }
            Payload::Verdict(accept) => ctx.decide(accept),
        }
        Ok(())
    }
}

struct FollowerProcess {
    proto: BidirMeetInMiddle,
    input: Symbol,
    /// The state this processor forwarded (after folding its letter).
    state_seen: Option<StateId>,
    /// The g-function this processor received (before folding its letter).
    gfunc_seen: Option<Vec<bool>>,
    verdict_sent: bool,
}

impl Process for FollowerProcess {
    fn on_message(&mut self, dir: Direction, msg: &BitString, ctx: &mut Context) -> ProcessResult {
        match self.proto.decode(msg)? {
            Payload::Verdict(v) => {
                // Verdicts ride through unchanged.
                ctx.send(dir, BidirMeetInMiddle::encode_verdict(v));
            }
            Payload::State(q) => {
                let folded = self.proto.dfa.step(q, self.input);
                if let Some(g) = &self.gfunc_seen {
                    // The g this processor *received* covers the suffix
                    // starting right after it: evaluate g(q_self).
                    if !self.verdict_sent {
                        self.verdict_sent = true;
                        ctx.send(dir, BidirMeetInMiddle::encode_verdict(g[folded.index()]));
                    }
                } else {
                    self.state_seen = Some(folded);
                    ctx.send(dir, self.proto.encode_state(folded));
                }
            }
            Payload::GFunc(g) => {
                if let Some(q) = self.state_seen {
                    // This processor already folded itself into the state
                    // probe; g covers the suffix after it.
                    if !self.verdict_sent {
                        self.verdict_sent = true;
                        ctx.send(dir, BidirMeetInMiddle::encode_verdict(g[q.index()]));
                    }
                } else {
                    self.gfunc_seen = Some(g.clone());
                    let folded = self.proto.fold_letter(&g, self.input);
                    ctx.send(dir, self.proto.encode_gfunc(&folded));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ringleader_automata::{Alphabet, Word};
    use ringleader_langs::{regular_corpus, Language};
    use ringleader_sim::{RingRunner, Scheduler};

    fn schedulers() -> Vec<Scheduler> {
        let mut s = vec![Scheduler::Fifo, Scheduler::LongestQueue];
        for seed in 0..6 {
            s.push(Scheduler::Random { seed });
        }
        s
    }

    #[test]
    fn agrees_with_language_under_all_schedulers() {
        let mut rng = StdRng::seed_from_u64(41);
        for lang in regular_corpus() {
            let proto = BidirMeetInMiddle::new(&lang);
            for n in [1usize, 2, 3, 5, 9] {
                for want in [true, false] {
                    let Some(w) = (if want {
                        lang.positive_example(n, &mut rng)
                    } else {
                        lang.negative_example(n, &mut rng)
                    }) else {
                        continue;
                    };
                    for sched in schedulers() {
                        let mut runner = RingRunner::new();
                        runner.scheduler(sched.clone());
                        let outcome = runner.run(&proto, &w).unwrap();
                        assert_eq!(
                            outcome.accepted(),
                            want,
                            "{} n={n} sched={sched:?}",
                            lang.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn exhaustive_small_n_fifo() {
        let sigma = Alphabet::from_chars("ab").unwrap();
        let lang = DfaLanguage::from_regex("(a|b)*abb", &sigma).unwrap();
        let proto = BidirMeetInMiddle::new(&lang);
        for len in 1..=8usize {
            for idx in 0..(1usize << len) {
                let text: String =
                    (0..len).map(|i| if (idx >> i) & 1 == 0 { 'a' } else { 'b' }).collect();
                let w = Word::from_str(&text, &sigma).unwrap();
                let outcome = RingRunner::new().run(&proto, &w).unwrap();
                assert_eq!(outcome.accepted(), lang.contains(&w), "{text}");
            }
        }
    }

    #[test]
    fn bit_complexity_is_linear_with_constant_messages() {
        let sigma = Alphabet::from_chars("ab").unwrap();
        let lang = DfaLanguage::from_regex("(ab)*", &sigma).unwrap();
        let proto = BidirMeetInMiddle::new(&lang);
        let mut rng = StdRng::seed_from_u64(2);
        let mut last = 0usize;
        for n in [8usize, 16, 32, 64] {
            let w = lang
                .positive_example(n, &mut rng)
                .or_else(|| lang.negative_example(n, &mut rng))
                .unwrap();
            let outcome = RingRunner::new().run(&proto, &w).unwrap();
            let bits = outcome.stats.total_bits;
            // Linear: doubling n at most ~doubles bits (slack for the
            // verdict path variability).
            if last > 0 {
                assert!(bits <= last * 3, "n={n}: {bits} vs {last}");
                assert!(bits >= last, "n={n}: {bits} vs {last}");
            }
            last = bits;
            assert!(outcome.stats.max_message_bits <= proto.message_bits_bound());
        }
    }

    #[test]
    fn traffic_flows_in_both_directions() {
        let sigma = Alphabet::from_chars("ab").unwrap();
        let lang = DfaLanguage::from_regex("a*b*", &sigma).unwrap();
        let proto = BidirMeetInMiddle::new(&lang);
        let w = Word::from_str("aabb", &sigma).unwrap();
        let outcome = RingRunner::new().run(&proto, &w).unwrap();
        let cw: usize = outcome.stats.clockwise_link_bits.iter().sum();
        let ccw: usize = outcome.stats.counter_clockwise_link_bits.iter().sum();
        assert!(cw > 0, "no clockwise traffic");
        assert!(ccw > 0, "no counter-clockwise traffic");
    }

    #[test]
    fn single_processor_ring() {
        let sigma = Alphabet::from_chars("ab").unwrap();
        let lang = DfaLanguage::from_regex("a", &sigma).unwrap();
        let proto = BidirMeetInMiddle::new(&lang);
        let w = Word::from_str("a", &sigma).unwrap();
        assert!(RingRunner::new().run(&proto, &w).unwrap().accepted());
        let w = Word::from_str("b", &sigma).unwrap();
        assert!(!RingRunner::new().run(&proto, &w).unwrap().accepted());
    }
}
