//! Note 7.1: recognizing `{wcw}` in `Θ(n²)` bits.
//!
//! "Every letter in `w` should be compared with the corresponding letter in
//! `w'`, which implies the lower bound of `Ω(n²)` bits." This protocol is
//! the matching upper bound, written so its wire cost is visibly the
//! transport of `w` across the ring:
//!
//! * Processors **before** the separator append their letter to the
//!   message — it accumulates `w` (`Θ(n)` bits per hop).
//! * The separator processor freezes the accumulated `w` and starts a
//!   match cursor.
//! * Processors **after** the separator compare their letter against
//!   `w[cursor]` and advance the cursor, still carrying all of `w` (the
//!   remaining comparisons need it).
//! * Back at the leader: accept iff the structure was well-formed and the
//!   cursor consumed exactly `|w|` letters.
//!
//! Message size stays `Θ(|w|) = Θ(n)` for `Θ(n)` hops ⇒ `Θ(n²)` bits. The
//! leader does *not* rebuild arbitrary ring contents (contrast
//! [`CollectAll`](crate::CollectAll)): only `w` travels.

use ringleader_automata::Symbol;
use ringleader_bitio::{BitReader, BitString, BitWriter};
use ringleader_langs::{Language, WcW};
use ringleader_sim::{
    Context, Direction, Process, ProcessError, ProcessResult, Protocol, Topology,
};

/// The prefix-forwarding `wcw` recognizer (`Θ(n²)` bits, unidirectional).
///
/// # Examples
///
/// ```rust
/// # use ringleader_core::WcWPrefixForward;
/// # use ringleader_langs::Language;
/// # use ringleader_automata::Word;
/// # use ringleader_sim::RingRunner;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let proto = WcWPrefixForward::new();
/// let w = Word::from_str("abcab", proto.language().alphabet())?;
/// assert!(RingRunner::new().run(&proto, &w)?.accepted());
/// let w = Word::from_str("abcaa", proto.language().alphabet())?;
/// assert!(!RingRunner::new().run(&proto, &w)?.accepted());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct WcWPrefixForward {
    language: WcW,
}

/// Scan phases of the in-flight token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Still accumulating `w` (no separator seen).
    Before,
    /// Separator seen; matching the second copy.
    After,
}

/// The in-flight token.
#[derive(Debug, Clone)]
struct Token {
    valid: bool,
    phase: Phase,
    /// The first copy of `w` (letters only, 1 bit each: a=0, b=1).
    prefix: Vec<bool>,
    /// How many second-copy letters matched so far.
    cursor: u64,
}

impl Token {
    fn encode(&self) -> BitString {
        let mut w = BitWriter::new();
        w.write_bit(self.valid);
        w.write_bit(matches!(self.phase, Phase::After));
        w.write_elias_delta(self.prefix.len() as u64 + 1);
        for &b in &self.prefix {
            w.write_bit(b);
        }
        w.write_elias_delta(self.cursor + 1);
        w.finish()
    }

    fn decode(msg: &BitString) -> Result<Self, ProcessError> {
        let mut r = BitReader::new(msg);
        let valid = r.read_bit()?;
        let phase = if r.read_bit()? { Phase::After } else { Phase::Before };
        let len = r.read_elias_delta()? - 1;
        let mut prefix = Vec::with_capacity(len as usize);
        for _ in 0..len {
            prefix.push(r.read_bit()?);
        }
        let cursor = r.read_elias_delta()? - 1;
        Ok(Self { valid, phase, prefix, cursor })
    }

    /// Folds one letter into the scan. `sep` is the separator symbol.
    fn absorb(mut self, letter: Symbol, sep: Symbol) -> Self {
        if !self.valid {
            return self;
        }
        match (self.phase, letter == sep) {
            (Phase::Before, true) => self.phase = Phase::After,
            (Phase::Before, false) => self.prefix.push(letter.index() == 1),
            (Phase::After, true) => self.valid = false, // second separator
            (Phase::After, false) => {
                let idx = self.cursor as usize;
                if idx < self.prefix.len() && self.prefix[idx] == (letter.index() == 1) {
                    self.cursor += 1;
                } else {
                    self.valid = false;
                }
            }
        }
        self
    }

    fn accepts(&self) -> bool {
        self.valid && self.phase == Phase::After && self.cursor as usize == self.prefix.len()
    }
}

impl WcWPrefixForward {
    /// Creates the protocol over the `{a, b, c}` alphabet of [`WcW`].
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The language being recognized.
    #[must_use]
    pub fn language(&self) -> &WcW {
        &self.language
    }
}

impl crate::graph::OnePassRule for WcWPrefixForward {
    fn alphabet(&self) -> ringleader_automata::Alphabet {
        self.language.alphabet().clone()
    }

    fn initial(&self, letter: Symbol) -> BitString {
        Token { valid: true, phase: Phase::Before, prefix: Vec::new(), cursor: 0 }
            .absorb(letter, self.language.separator())
            .encode()
    }

    fn next(&self, incoming: &BitString, letter: Symbol) -> BitString {
        Token::decode(incoming)
            .expect("explorer feeds back our own encodings")
            .absorb(letter, self.language.separator())
            .encode()
    }

    fn accept(&self, final_message: &BitString) -> bool {
        Token::decode(final_message).expect("explorer feeds back our own encodings").accepts()
    }
}

impl Protocol for WcWPrefixForward {
    fn name(&self) -> &'static str {
        "wcw-prefix-forward"
    }

    fn topology(&self) -> Topology {
        Topology::Unidirectional
    }

    fn leader(&self, input: Symbol) -> Box<dyn Process> {
        Box::new(LeaderProcess { input, sep: self.language.separator() })
    }

    fn follower(&self, input: Symbol) -> Box<dyn Process> {
        Box::new(FollowerProcess { input, sep: self.language.separator() })
    }
}

struct LeaderProcess {
    input: Symbol,
    sep: Symbol,
}

impl Process for LeaderProcess {
    fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
        let token = Token { valid: true, phase: Phase::Before, prefix: Vec::new(), cursor: 0 }
            .absorb(self.input, self.sep);
        ctx.send(Direction::Clockwise, token.encode());
        Ok(())
    }

    fn on_message(&mut self, _dir: Direction, msg: &BitString, ctx: &mut Context) -> ProcessResult {
        let token = Token::decode(msg)?;
        ctx.decide(token.accepts());
        Ok(())
    }
}

struct FollowerProcess {
    input: Symbol,
    sep: Symbol,
}

impl Process for FollowerProcess {
    fn on_message(&mut self, _dir: Direction, msg: &BitString, ctx: &mut Context) -> ProcessResult {
        let token = Token::decode(msg)?.absorb(self.input, self.sep);
        ctx.send(Direction::Clockwise, token.encode());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ringleader_automata::Word;
    use ringleader_sim::RingRunner;

    fn run(text: &str) -> bool {
        let proto = WcWPrefixForward::new();
        let w = Word::from_str(text, proto.language().alphabet()).unwrap();
        RingRunner::new().run(&proto, &w).unwrap().accepted()
    }

    #[test]
    fn accepts_members() {
        assert!(run("c"));
        assert!(run("aca"));
        assert!(run("bcb"));
        assert!(run("abcab"));
        assert!(run("babcbab"));
    }

    #[test]
    fn rejects_non_members() {
        assert!(!run("a"));
        assert!(!run("ac"));
        assert!(!run("acb"));
        assert!(!run("abcba")); // reversed copy
        assert!(!run("abcabc")); // trailing separator
        assert!(!run("ccc"));
        assert!(!run("abcaba")); // too long on the right
        assert!(!run("abca")); // too short on the right
    }

    #[test]
    fn exhaustive_small_n_matches_language() {
        let proto = WcWPrefixForward::new();
        let lang = proto.language().clone();
        let sigma = lang.alphabet().clone();
        for len in 1..=7usize {
            for idx in 0..3usize.pow(len as u32) {
                let mut x = idx;
                let text: String = (0..len)
                    .map(|_| {
                        let c = ['a', 'b', 'c'][x % 3];
                        x /= 3;
                        c
                    })
                    .collect();
                let w = Word::from_str(&text, &sigma).unwrap();
                let outcome = RingRunner::new().run(&proto, &w).unwrap();
                assert_eq!(outcome.accepted(), lang.contains(&w), "{text}");
            }
        }
    }

    #[test]
    fn bit_complexity_is_quadratic() {
        let proto = WcWPrefixForward::new();
        let lang = proto.language().clone();
        let mut rng = StdRng::seed_from_u64(8);
        let bits = |n: usize, rng: &mut StdRng| {
            let w = lang.positive_example(n, rng).unwrap();
            RingRunner::new().run(&proto, &w).unwrap().stats.total_bits as f64
        };
        let b = bits(41, &mut rng);
        let b4 = bits(161, &mut rng);
        let ratio = b4 / b;
        // Quadratic: ~16×; n log n would be < 6.
        assert!(ratio > 10.0 && ratio < 22.0, "ratio {ratio}");
    }

    #[test]
    fn message_size_is_linear_in_n() {
        let proto = WcWPrefixForward::new();
        let lang = proto.language().clone();
        let mut rng = StdRng::seed_from_u64(8);
        let w = lang.positive_example(101, &mut rng).unwrap();
        let outcome = RingRunner::new().run(&proto, &w).unwrap();
        // Carries the 50-letter prefix plus O(log n) framing.
        assert!(outcome.stats.max_message_bits >= 50);
        assert!(outcome.stats.max_message_bits < 80);
    }

    #[test]
    fn near_miss_negatives_rejected() {
        let proto = WcWPrefixForward::new();
        let lang = proto.language().clone();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..40 {
            let neg = lang.negative_example(15, &mut rng).unwrap();
            assert!(
                !RingRunner::new().run(&proto, &neg).unwrap().accepted(),
                "{}",
                neg.render(lang.alphabet())
            );
        }
    }
}
