//! Property-based tests: every protocol against its language's ground
//! truth, on randomized workloads and schedules.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

use ringleader_automata::{Symbol, Word};
use ringleader_core::{
    analyze_info_states, BidirMeetInMiddle, CollectAll, CountRingSize, DyckCounter, LgRecognizer,
    OnePassParity, StatelessTwoPass, ThreeCounters, TwoPassParity, WcWPrefixForward,
};
use ringleader_langs::{
    AnBnCn, DfaLanguage, Dyck, GrowthFunction, Language, LgLanguage, TradeoffLanguage, WcW,
};
use ringleader_sim::{Protocol, RingRunner, Scheduler};

/// Draws a word of length `len` from the language (side chosen by
/// `positive`), if one exists.
fn draw(lang: &dyn Language, len: usize, positive: bool, seed: u64) -> Option<Word> {
    let mut rng = StdRng::seed_from_u64(seed);
    if positive {
        lang.positive_example(len, &mut rng)
    } else {
        lang.negative_example(len, &mut rng)
    }
}

fn check(
    proto: &dyn Protocol,
    lang: &dyn Language,
    len: usize,
    positive: bool,
    seed: u64,
) -> Result<(), TestCaseError> {
    if let Some(word) = draw(lang, len, positive, seed) {
        let outcome = RingRunner::new().run(proto, &word).unwrap();
        prop_assert_eq!(
            outcome.accepted(),
            positive,
            "{} on {} (n={}, positive={})",
            proto.name(),
            lang.name(),
            len,
            positive
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn three_counters_sound(len in 1usize..60, positive: bool, seed: u64) {
        check(&ThreeCounters::new(), &AnBnCn::new(), len, positive, seed)?;
    }

    #[test]
    fn dyck_counter_sound(len in 1usize..60, positive: bool, seed: u64) {
        check(&DyckCounter::new(), &Dyck::new(), len, positive, seed)?;
    }

    #[test]
    fn wcw_sound(len in 1usize..40, positive: bool, seed: u64) {
        check(&WcWPrefixForward::new(), &WcW::new(), len, positive, seed)?;
    }

    #[test]
    fn lg_recognizer_sound(len in 1usize..64, positive: bool, seed: u64, periodic: bool) {
        for g in [GrowthFunction::NLogN, GrowthFunction::NSqrtN, GrowthFunction::NSquaredHalf] {
            let lang = if periodic {
                LgLanguage::fully_periodic(g)
            } else {
                LgLanguage::new(g)
            };
            check(&LgRecognizer::new(&lang), &lang, len, positive, seed)?;
        }
    }

    #[test]
    fn parity_family_sound(len in 1usize..40, positive: bool, seed: u64, k in 1u32..=4) {
        let lang = TradeoffLanguage::new(k);
        check(&TwoPassParity::new(k), &lang, len, positive, seed)?;
        check(&OnePassParity::new(k), &lang, len, positive, seed)?;
        check(&StatelessTwoPass::new(k), &lang, len, positive, seed)?;
    }

    #[test]
    fn counting_predicates_sound(n in 1usize..80, modulus in 2usize..9) {
        let expected = n % modulus;
        let proto = CountRingSize::new(Arc::new(move |got| got % modulus == expected));
        let word = Word::from_symbols(vec![Symbol(0); n]);
        // The unary alphabet word "a"*n: protocol ignores letters anyway.
        let outcome = RingRunner::new().run(&proto, &word).unwrap();
        prop_assert!(outcome.accepted());
    }

    /// Worst-case quantifier: for the deterministic protocols, the bits on
    /// accepting vs rejecting runs of the same length never differ by more
    /// than the counter-framing jitter (same complexity class per length).
    #[test]
    fn accept_and_reject_cost_the_same_class(len in 3usize..60, seed: u64) {
        let lang = AnBnCn::new();
        let proto = ThreeCounters::new();
        let (Some(pos), Some(neg)) = (
            draw(&lang, len - len % 3, true, seed),
            draw(&lang, len, false, seed),
        ) else {
            return Ok(());
        };
        let pb = RingRunner::new().run(&proto, &pos).unwrap().stats.total_bits;
        let nb = RingRunner::new().run(&proto, &neg).unwrap().stats.total_bits;
        // Both are Θ(n log n); allow a 4x band for framing and the length
        // rounding above.
        let ratio = pb.max(nb) as f64 / pb.min(nb).max(1) as f64;
        prop_assert!(ratio < 4.0, "{pb} vs {nb}");
    }

    /// Theorem 5's bidirectional info-state bound: at most THREE
    /// processors share an information state on shortest-witness words —
    /// checked on the genuinely bidirectional protocol.
    #[test]
    fn bidirectional_census_respects_theorem5(seed in 0u64..20) {
        let sigma = ringleader_automata::Alphabet::from_chars("ab").unwrap();
        let lang = DfaLanguage::from_regex("(a|b)*abb", &sigma).unwrap();
        let proto = BidirMeetInMiddle::new(&lang);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut words = Vec::new();
        for len in 1..=7usize {
            if let Some(w) = lang.positive_example(len, &mut rng) {
                words.push(w);
            }
            if let Some(w) = lang.negative_example(len, &mut rng) {
                words.push(w);
            }
        }
        let report = analyze_info_states(&proto, &words).unwrap();
        prop_assert!(
            report.max_multiplicity_on_shortest_witness <= 3,
            "{:?}",
            report
        );
    }

    /// Decisions are schedule-independent for every protocol in the suite
    /// (bits too, for the unidirectional ones — covered elsewhere).
    #[test]
    fn decisions_are_schedule_independent(len in 2usize..30, positive: bool, seed: u64, sched_seed: u64) {
        let protos: Vec<(Box<dyn Protocol>, Box<dyn Language>)> = vec![
            (Box::new(ThreeCounters::new()), Box::new(AnBnCn::new())),
            (Box::new(DyckCounter::new()), Box::new(Dyck::new())),
            (
                Box::new(CollectAll::new(Arc::new(WcW::new()))),
                Box::new(WcW::new()),
            ),
        ];
        for (proto, lang) in &protos {
            let Some(word) = draw(lang.as_ref(), len, positive, seed) else { continue };
            let fifo = RingRunner::new().run(proto.as_ref(), &word).unwrap();
            let mut runner = RingRunner::new();
            runner.scheduler(Scheduler::Random { seed: sched_seed });
            let random = runner.run(proto.as_ref(), &word).unwrap();
            prop_assert_eq!(fifo.decision, random.decision, "{}", proto.name());
        }
    }
}
