//! Property-based tests for the automata toolkit.
//!
//! The core invariants: minimization and determinization preserve the
//! language; product constructions implement their boolean semantics;
//! sampling only produces members.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ringleader_automata::{Alphabet, Dfa, Symbol, Word, WordSampler};

/// Strategy: a random complete DFA over {a,b} with up to 8 states.
fn random_dfa() -> impl Strategy<Value = Dfa> {
    (1usize..=8).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec(0..n, n * 2),
            proptest::collection::vec(any::<bool>(), n),
            0..n,
        )
            .prop_map(|(n, targets, accepting, start)| {
                let sigma = Alphabet::from_chars("ab").unwrap();
                Dfa::from_fn(sigma, n, start, |q| accepting[q], |q, s| targets[q * 2 + s.index()])
                    .expect("targets are in range by construction")
            })
    })
}

/// Strategy: a random word over {a,b} up to length 12.
fn random_word() -> impl Strategy<Value = Word> {
    proptest::collection::vec(0u16..2, 0..12)
        .prop_map(|v| Word::from_symbols(v.into_iter().map(Symbol).collect()))
}

proptest! {
    #[test]
    fn minimization_preserves_language(dfa in random_dfa(), words in proptest::collection::vec(random_word(), 1..30)) {
        let m = dfa.minimized();
        prop_assert!(m.state_count() <= dfa.state_count().max(1));
        for w in &words {
            prop_assert_eq!(dfa.accepts(w), m.accepts(w));
        }
        prop_assert!(m.equivalent(&dfa).unwrap());
    }

    #[test]
    fn minimized_is_canonical_for_equivalent_automata(dfa in random_dfa()) {
        // Minimizing an automaton and its trimmed copy yields identical
        // (not just equivalent) DFAs thanks to BFS renumbering.
        let m1 = dfa.minimized();
        let m2 = dfa.trimmed().minimized();
        prop_assert_eq!(m1, m2);
    }

    #[test]
    fn complement_is_involutive_and_disjoint(dfa in random_dfa(), w in random_word()) {
        let c = dfa.complement();
        prop_assert_eq!(dfa.accepts(&w), !c.accepts(&w));
        prop_assert_eq!(c.complement().accepts(&w), dfa.accepts(&w));
    }

    #[test]
    fn product_semantics(a in random_dfa(), b in random_dfa(), w in random_word()) {
        let inter = a.intersect(&b).unwrap();
        let uni = a.union(&b).unwrap();
        let sym = a.symmetric_difference(&b).unwrap();
        prop_assert_eq!(inter.accepts(&w), a.accepts(&w) && b.accepts(&w));
        prop_assert_eq!(uni.accepts(&w), a.accepts(&w) || b.accepts(&w));
        prop_assert_eq!(sym.accepts(&w), a.accepts(&w) != b.accepts(&w));
    }

    #[test]
    fn equivalence_is_reflexive_and_respects_complement(dfa in random_dfa()) {
        prop_assert!(dfa.equivalent(&dfa).unwrap());
        prop_assert!(dfa.equivalent(&dfa.minimized()).unwrap());
        // A DFA equals its complement only if... never (some word differs,
        // since every word is in exactly one of the two).
        prop_assert!(!dfa.equivalent(&dfa.complement()).unwrap());
    }

    #[test]
    fn shortest_accepted_is_shortest(dfa in random_dfa()) {
        if let Some(w) = dfa.shortest_accepted() {
            prop_assert!(dfa.accepts(&w));
            // No strictly shorter accepted word exists: check exhaustively.
            let sampler = WordSampler::new(&dfa, w.len().saturating_sub(1));
            for len in 0..w.len() {
                prop_assert_eq!(sampler.count(len), 0, "found shorter word at length {}", len);
            }
        } else {
            // Empty language: no accepted word up to a healthy bound.
            let sampler = WordSampler::new(&dfa, 16);
            for len in 0..=16usize {
                prop_assert_eq!(sampler.count(len), 0);
            }
        }
    }

    #[test]
    fn sampler_counts_sum_over_first_letter(dfa in random_dfa(), len in 1usize..10) {
        // count(len, q0) = Σ_σ count(len-1, δ(q0,σ)) — the DP invariant,
        // verified against an independent sampler built per successor.
        let sampler = WordSampler::new(&dfa, len);
        let total = sampler.count(len);
        let mut sum = 0u128;
        for s in dfa.alphabet().symbols() {
            let mut word = Word::new();
            word.push(s);
            // Build a DFA that starts at δ(q0, σ).
            let shifted = Dfa::from_fn(
                dfa.alphabet().clone(),
                dfa.state_count(),
                dfa.step(dfa.start(), s).index(),
                |q| dfa.is_accepting(ringleader_automata::StateId(q as u32)),
                |q, sym| dfa.step(ringleader_automata::StateId(q as u32), sym).index(),
            )
            .unwrap();
            sum = sum.saturating_add(WordSampler::new(&shifted, len - 1).count(len - 1));
        }
        prop_assert_eq!(total, sum);
    }

    #[test]
    fn samples_are_members(dfa in random_dfa(), len in 0usize..14, seed: u64) {
        let sampler = WordSampler::new(&dfa, len);
        let mut rng = StdRng::seed_from_u64(seed);
        match sampler.sample(len, &mut rng) {
            Some(w) => {
                prop_assert_eq!(w.len(), len);
                prop_assert!(dfa.accepts(&w));
            }
            None => prop_assert_eq!(sampler.count(len), 0),
        }
    }

    #[test]
    fn run_decomposes_over_concat(dfa in random_dfa(), u in random_word(), v in random_word()) {
        // δ*(q0, uv) = δ*(δ*(q0,u), v): the exact property Theorem 1's
        // state-forwarding protocol relies on.
        let mid = dfa.run(&u);
        let direct = dfa.run(&u.concat(&v));
        let composed = dfa.run_from(mid, &v);
        prop_assert_eq!(direct, composed);
    }
}
