//! Cross-validation on a three-letter alphabet.
//!
//! Most unit tests use `{a, b}`; the ring experiments also run over
//! `{0,1,2}` and `{a,b,c}`, so the toolkit's alphabet-genericity deserves
//! its own coverage: regex semantics, product constructions, minimization,
//! and sampling must all hold when `|Σ| > 2`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ringleader_automata::{Alphabet, Dfa, Regex, Word, WordSampler};

fn sigma() -> Alphabet {
    Alphabet::from_chars("abc").unwrap()
}

/// Enumerate all words of length `len` over a 3-letter alphabet.
fn all_words(len: usize) -> Vec<Word> {
    let sigma = sigma();
    let mut out = Vec::new();
    for mut idx in 0..3usize.pow(len as u32) {
        let mut text = String::new();
        for _ in 0..len {
            text.push(['a', 'b', 'c'][idx % 3]);
            idx /= 3;
        }
        out.push(Word::from_str(&text, &sigma).unwrap());
    }
    out
}

#[test]
fn regex_semantics_over_three_letters() {
    let sigma = sigma();
    let cases = [
        // (pattern, word, expected)
        ("a(b|c)*", "abcbc", true),
        ("a(b|c)*", "abca", false),
        ("[ab]c[ab]c", "acbc", true),
        ("[ab]c[ab]c", "cccc", false),
        (".*c", "abc", true),
        (".*c", "cba", false),
        ("(abc)+", "abcabc", true),
        ("(abc)+", "", false),
        ("a?b?c?", "ac", true),
        ("a?b?c?", "ca", false),
    ];
    for (pattern, text, expected) in cases {
        let dfa = Regex::parse(pattern, &sigma).unwrap().compile();
        let word = Word::from_str(text, &sigma).unwrap();
        assert_eq!(dfa.accepts(&word), expected, "{pattern} on {text}");
    }
}

#[test]
fn de_morgan_on_three_letter_languages() {
    // ¬(L1 ∪ L2) = ¬L1 ∩ ¬L2, verified exhaustively to length 5.
    let sigma = sigma();
    let l1 = Regex::parse("a.*", &sigma).unwrap().compile();
    let l2 = Regex::parse(".*c", &sigma).unwrap().compile();
    let lhs = l1.union(&l2).unwrap().complement();
    let rhs = l1.complement().intersect(&l2.complement()).unwrap();
    assert!(lhs.equivalent(&rhs).unwrap());
    for len in 0..=5usize {
        for w in all_words(len) {
            assert_eq!(lhs.accepts(&w), rhs.accepts(&w));
        }
    }
}

#[test]
fn minimization_collapses_three_letter_redundancy() {
    // Build a deliberately redundant automaton: state q tracks the last
    // letter (3 states + start), but acceptance only depends on whether
    // the last letter was 'c' — minimization must find the 2-class truth.
    let sigma = sigma();
    // States: 0 = start/last-a, 1 = last-b, 2 = last-c.
    let dfa = Dfa::from_fn(sigma, 3, 0, |q| q == 2, |_, s| s.index()).unwrap();
    let minimal = dfa.minimized();
    assert_eq!(minimal.state_count(), 2);
    assert!(minimal.equivalent(&dfa).unwrap());
}

#[test]
fn sampler_counts_powers_of_three() {
    let sigma = sigma();
    let universal = Regex::parse(".*", &sigma).unwrap().compile();
    let sampler = WordSampler::new(&universal, 12);
    for len in 0..=12usize {
        assert_eq!(sampler.count(len), 3u128.pow(len as u32), "len={len}");
    }
}

#[test]
fn sampler_uniformity_on_constrained_language() {
    // Words of length 3 with exactly one 'c': 3 positions × 2² fillings = 12.
    let sigma = sigma();
    let lang = Regex::parse("c[ab][ab]|[ab]c[ab]|[ab][ab]c", &sigma).unwrap().compile();
    let sampler = WordSampler::new(&lang, 3);
    assert_eq!(sampler.count(3), 12);
    let mut rng = StdRng::seed_from_u64(99);
    let mut seen = std::collections::BTreeMap::new();
    for _ in 0..2400 {
        let w = sampler.sample(3, &mut rng).unwrap();
        *seen.entry(w.render(&sigma)).or_insert(0usize) += 1;
    }
    assert_eq!(seen.len(), 12, "all twelve words should appear");
    for (word, count) in seen {
        assert!(count > 100 && count < 400, "{word}: {count}/2400");
    }
}

#[test]
fn shortest_accepted_with_three_letters() {
    let sigma = sigma();
    let dfa = Regex::parse("(a|b)(a|b)c", &sigma).unwrap().compile();
    let w = dfa.shortest_accepted().unwrap();
    assert_eq!(w.len(), 3);
    assert!(dfa.accepts(&w));
    // Symbol-order BFS gives the lexicographically least witness: "aac".
    assert_eq!(w.render(&sigma), "aac");
}

#[test]
fn enumerate_agrees_with_brute_force() {
    let sigma = sigma();
    let dfa = Regex::parse("a.*c", &sigma).unwrap().compile();
    let sampler = WordSampler::new(&dfa, 6);
    for len in 0..=6usize {
        let enumerated: std::collections::BTreeSet<String> =
            sampler.enumerate(len).into_iter().map(|w| w.render(&sigma)).collect();
        let brute: std::collections::BTreeSet<String> = all_words(len)
            .into_iter()
            .filter(|w| dfa.accepts(w))
            .map(|w| w.render(&sigma))
            .collect();
        assert_eq!(enumerated, brute, "len={len}");
    }
}
