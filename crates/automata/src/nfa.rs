//! Nondeterministic finite automata with ε-transitions.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::{Alphabet, Dfa, StateId, Symbol, Word};

/// A nondeterministic finite automaton with ε-moves.
///
/// The regex front-end builds NFAs with the Thompson construction; the
/// subset construction ([`Nfa::determinize`]) then yields the complete
/// [`Dfa`] that the ring protocols consume.
///
/// # Examples
///
/// ```rust
/// # use ringleader_automata::{Alphabet, Nfa, Word};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sigma = Alphabet::from_chars("ab")?;
/// // Accepts "a" or "ab" via nondeterministic choice.
/// let mut nfa = Nfa::new(sigma.clone());
/// let s0 = nfa.add_state();
/// let s1 = nfa.add_state();
/// let s2 = nfa.add_state();
/// nfa.add_transition(s0, sigma.symbol('a').unwrap(), s1);
/// nfa.add_transition(s1, sigma.symbol('b').unwrap(), s2);
/// nfa.set_start(s0);
/// nfa.add_accepting(s1);
/// nfa.add_accepting(s2);
/// let dfa = nfa.determinize();
/// assert!(dfa.accepts(&Word::from_str("a", &sigma)?));
/// assert!(dfa.accepts(&Word::from_str("ab", &sigma)?));
/// assert!(!dfa.accepts(&Word::from_str("b", &sigma)?));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Nfa {
    alphabet: Alphabet,
    /// `transitions[state]` = labelled edges.
    transitions: Vec<Vec<(Symbol, usize)>>,
    /// `epsilon[state]` = ε-successors.
    epsilon: Vec<Vec<usize>>,
    accepting: Vec<bool>,
    start: usize,
}

impl Nfa {
    /// Creates an empty NFA (no states yet) over `alphabet`.
    #[must_use]
    pub fn new(alphabet: Alphabet) -> Self {
        Self {
            alphabet,
            transitions: Vec::new(),
            epsilon: Vec::new(),
            accepting: Vec::new(),
            start: 0,
        }
    }

    /// The automaton's alphabet.
    #[must_use]
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of states.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.transitions.len()
    }

    /// Adds a state and returns its index.
    pub fn add_state(&mut self) -> usize {
        self.transitions.push(Vec::new());
        self.epsilon.push(Vec::new());
        self.accepting.push(false);
        self.transitions.len() - 1
    }

    /// Adds the labelled edge `from --symbol--> to`.
    ///
    /// # Panics
    ///
    /// Panics if either state is unknown or `symbol` is out of range.
    pub fn add_transition(&mut self, from: usize, symbol: Symbol, to: usize) {
        assert!(from < self.state_count() && to < self.state_count(), "unknown state");
        assert!(symbol.index() < self.alphabet.len(), "symbol out of range");
        self.transitions[from].push((symbol, to));
    }

    /// Adds the ε-edge `from --ε--> to`.
    ///
    /// # Panics
    ///
    /// Panics if either state is unknown.
    pub fn add_epsilon(&mut self, from: usize, to: usize) {
        assert!(from < self.state_count() && to < self.state_count(), "unknown state");
        self.epsilon[from].push(to);
    }

    /// Chooses the start state.
    ///
    /// # Panics
    ///
    /// Panics if `start` is unknown.
    pub fn set_start(&mut self, start: usize) {
        assert!(start < self.state_count(), "unknown state");
        self.start = start;
    }

    /// Marks `state` accepting.
    ///
    /// # Panics
    ///
    /// Panics if `state` is unknown.
    pub fn add_accepting(&mut self, state: usize) {
        assert!(state < self.state_count(), "unknown state");
        self.accepting[state] = true;
    }

    /// ε-closure of a set of states.
    fn closure(&self, set: &BTreeSet<usize>) -> BTreeSet<usize> {
        let mut out = set.clone();
        let mut queue: VecDeque<usize> = set.iter().copied().collect();
        while let Some(q) = queue.pop_front() {
            for &t in &self.epsilon[q] {
                if out.insert(t) {
                    queue.push_back(t);
                }
            }
        }
        out
    }

    /// Whether the NFA accepts `word` (direct simulation, no determinizing).
    #[must_use]
    pub fn accepts(&self, word: &Word) -> bool {
        if self.state_count() == 0 {
            return false;
        }
        let mut current = self.closure(&BTreeSet::from([self.start]));
        for &s in word.symbols() {
            let mut next = BTreeSet::new();
            for &q in &current {
                for &(label, t) in &self.transitions[q] {
                    if label == s {
                        next.insert(t);
                    }
                }
            }
            current = self.closure(&next);
            if current.is_empty() {
                return false;
            }
        }
        current.iter().any(|&q| self.accepting[q])
    }

    /// Subset construction: an equivalent complete [`Dfa`].
    ///
    /// The empty subset becomes an explicit dead state, so the result is
    /// total as the ring protocols require.
    #[must_use]
    pub fn determinize(&self) -> Dfa {
        let k = self.alphabet.len();
        let mut subsets: Vec<BTreeSet<usize>> = Vec::new();
        let mut index: BTreeMap<BTreeSet<usize>, usize> = BTreeMap::new();
        let mut transitions: Vec<Vec<StateId>> = Vec::new();
        let mut accepting: Vec<bool> = Vec::new();

        let start_set = if self.state_count() == 0 {
            BTreeSet::new()
        } else {
            self.closure(&BTreeSet::from([self.start]))
        };
        index.insert(start_set.clone(), 0);
        subsets.push(start_set);

        let mut i = 0;
        while i < subsets.len() {
            let current = subsets[i].clone();
            accepting.push(current.iter().any(|&q| self.accepting[q]));
            let mut row = Vec::with_capacity(k);
            for s in self.alphabet.symbols() {
                let mut next = BTreeSet::new();
                for &q in &current {
                    for &(label, t) in &self.transitions[q] {
                        if label == s {
                            next.insert(t);
                        }
                    }
                }
                let next = self.closure(&next);
                let id = *index.entry(next.clone()).or_insert_with(|| {
                    subsets.push(next);
                    subsets.len() - 1
                });
                row.push(StateId(id as u32));
            }
            transitions.push(row);
            i += 1;
        }
        Dfa::from_parts(self.alphabet.clone(), transitions, accepting, StateId(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sigma() -> Alphabet {
        Alphabet::from_chars("ab").unwrap()
    }

    fn w(text: &str) -> Word {
        Word::from_str(text, &sigma()).unwrap()
    }

    /// NFA for (a|b)*abb — the classic dragon-book example.
    fn dragon() -> Nfa {
        let sigma = sigma();
        let a = sigma.symbol('a').unwrap();
        let b = sigma.symbol('b').unwrap();
        let mut n = Nfa::new(sigma);
        let s: Vec<usize> = (0..4).map(|_| n.add_state()).collect();
        n.add_transition(s[0], a, s[0]);
        n.add_transition(s[0], b, s[0]);
        n.add_transition(s[0], a, s[1]);
        n.add_transition(s[1], b, s[2]);
        n.add_transition(s[2], b, s[3]);
        n.set_start(s[0]);
        n.add_accepting(s[3]);
        n
    }

    #[test]
    fn direct_simulation() {
        let n = dragon();
        assert!(n.accepts(&w("abb")));
        assert!(n.accepts(&w("aabb")));
        assert!(n.accepts(&w("babb")));
        assert!(!n.accepts(&w("ab")));
        assert!(!n.accepts(&w("abba")));
        assert!(!n.accepts(&w("")));
    }

    #[test]
    fn determinize_agrees_with_simulation_exhaustively() {
        let n = dragon();
        let d = n.determinize();
        for len in 0..=10usize {
            for idx in 0..(1usize << len) {
                let text: String =
                    (0..len).map(|i| if (idx >> i) & 1 == 0 { 'a' } else { 'b' }).collect();
                let word = w(&text);
                assert_eq!(n.accepts(&word), d.accepts(&word), "{text:?}");
            }
        }
    }

    #[test]
    fn determinized_dragon_minimizes_to_four_states() {
        let d = dragon().determinize().minimized();
        assert_eq!(d.state_count(), 4);
    }

    #[test]
    fn epsilon_closure_chains() {
        let sigma = sigma();
        let a = sigma.symbol('a').unwrap();
        let mut n = Nfa::new(sigma);
        let s0 = n.add_state();
        let s1 = n.add_state();
        let s2 = n.add_state();
        let s3 = n.add_state();
        n.add_epsilon(s0, s1);
        n.add_epsilon(s1, s2);
        n.add_transition(s2, a, s3);
        n.set_start(s0);
        n.add_accepting(s3);
        assert!(n.accepts(&w("a")));
        assert!(!n.accepts(&w("")));
        let d = n.determinize();
        assert!(d.accepts(&w("a")));
        assert!(!d.accepts(&w("aa")));
    }

    #[test]
    fn empty_nfa_rejects_everything() {
        let n = Nfa::new(sigma());
        assert!(!n.accepts(&w("")));
        let d = n.determinize();
        assert!(!d.accepts(&w("")));
        assert!(!d.accepts(&w("ab")));
    }

    #[test]
    fn accepting_start_accepts_empty_word() {
        let mut n = Nfa::new(sigma());
        let s0 = n.add_state();
        n.set_start(s0);
        n.add_accepting(s0);
        assert!(n.accepts(&w("")));
        assert!(n.determinize().accepts(&w("")));
    }
}
