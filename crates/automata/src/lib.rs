//! Finite-automata toolkit for ring pattern recognition.
//!
//! Mansour & Zaks (PODC 1986) characterize the languages recognizable in
//! `O(n)` bits on a ring with a leader as exactly the **regular** languages.
//! Both directions of that characterization are constructive and both
//! constructions live on top of this crate:
//!
//! * Theorem 1 consumes a [`Dfa`]: the one-pass algorithm forwards the
//!   automaton state in `⌈log |Q|⌉` bits per message.
//! * Theorem 2 *produces* a DFA: the reachable message graph of any
//!   `O(n)`-bit one-pass algorithm is finite and is (literally) a state
//!   diagram. The extraction code in `ringleader-core` returns a [`Dfa`]
//!   built here and proves equivalence with [`Dfa::equivalent`].
//!
//! The crate also carries the workload machinery the experiments need:
//! a regex front-end ([`Regex`]), an [`Nfa`] with subset construction,
//! Hopcroft minimization ([`Dfa::minimized`]), and per-length word
//! counting/sampling ([`WordSampler`]) used by the benchmark generators.
//!
//! # Examples
//!
//! Compile a regex, minimize it, and run it:
//!
//! ```rust
//! # use ringleader_automata::{Alphabet, Regex, Word};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ab = Alphabet::from_chars("ab")?;
//! let dfa = Regex::parse("(ab)*", &ab)?.compile();
//! assert!(dfa.accepts(&Word::from_str("abab", &ab)?));
//! assert!(!dfa.accepts(&Word::from_str("aba", &ab)?));
//! assert_eq!(dfa.minimized().state_count(), 3); // expecting-a, expecting-b, dead
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alphabet;
mod dfa;
mod error;
mod minimize;
mod nfa;
mod regex;
mod sample;

pub use alphabet::{Alphabet, Symbol, Word};
pub use dfa::{Dfa, DfaBuilder, StateId};
pub use error::AutomataError;
pub use nfa::Nfa;
pub use regex::Regex;
pub use sample::WordSampler;
