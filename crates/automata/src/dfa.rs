//! Deterministic finite automata.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::{Alphabet, AutomataError, Symbol, Word};

/// Identifier of a DFA state (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StateId(pub u32);

impl StateId {
    /// The dense index of this state.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A complete deterministic finite automaton `(Q, Σ, δ, q₀, F)`.
///
/// Transitions are total: every state has an outgoing edge for every
/// symbol. This matches the paper's Theorem 1, where each processor applies
/// `δ` to whatever state arrives — there is no "missing transition" on a
/// ring.
///
/// # Examples
///
/// Even number of `a`s over `{a,b}`:
///
/// ```rust
/// # use ringleader_automata::{Alphabet, Dfa, DfaBuilder, Word};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sigma = Alphabet::from_chars("ab")?;
/// let mut b = DfaBuilder::new(sigma.clone());
/// let even = b.add_state(true);
/// let odd = b.add_state(false);
/// let a = sigma.symbol('a').unwrap();
/// let bb = sigma.symbol('b').unwrap();
/// b.set_transition(even, a, odd);
/// b.set_transition(even, bb, even);
/// b.set_transition(odd, a, even);
/// b.set_transition(odd, bb, odd);
/// b.set_start(even);
/// let dfa = b.build()?;
/// assert!(dfa.accepts(&Word::from_str("abab", &sigma)?));
/// assert!(!dfa.accepts(&Word::from_str("ab", &sigma)?));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dfa {
    alphabet: Alphabet,
    /// `transitions[state][symbol]`.
    transitions: Vec<Vec<StateId>>,
    accepting: Vec<bool>,
    start: StateId,
}

impl Dfa {
    /// Builds a DFA directly from closures — convenient for the fixed
    /// families in the language corpus.
    ///
    /// `transition(state, symbol)` and `accepting(state)` are evaluated for
    /// every `state in 0..state_count`.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::MalformedDfa`] if `state_count == 0`, the
    /// start is out of range, or any transition target is out of range.
    pub fn from_fn(
        alphabet: Alphabet,
        state_count: usize,
        start: usize,
        accepting: impl Fn(usize) -> bool,
        transition: impl Fn(usize, Symbol) -> usize,
    ) -> Result<Self, AutomataError> {
        if state_count == 0 {
            return Err(AutomataError::MalformedDfa("no states".into()));
        }
        if start >= state_count {
            return Err(AutomataError::MalformedDfa(format!("start {start} out of range")));
        }
        let mut transitions = Vec::with_capacity(state_count);
        for q in 0..state_count {
            let mut row = Vec::with_capacity(alphabet.len());
            for s in alphabet.symbols() {
                let to = transition(q, s);
                if to >= state_count {
                    return Err(AutomataError::MalformedDfa(format!(
                        "transition ({q}, {s}) -> {to} out of range"
                    )));
                }
                row.push(StateId(to as u32));
            }
            transitions.push(row);
        }
        Ok(Self {
            alphabet,
            transitions,
            accepting: (0..state_count).map(accepting).collect(),
            start: StateId(start as u32),
        })
    }

    /// The automaton's alphabet.
    #[must_use]
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of states `|Q|`.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.transitions.len()
    }

    /// The start state `q₀`.
    #[must_use]
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Whether `state` is in `F`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn is_accepting(&self, state: StateId) -> bool {
        self.accepting[state.index()]
    }

    /// One step of `δ`.
    ///
    /// # Panics
    ///
    /// Panics if `state` or `symbol` is out of range.
    #[must_use]
    pub fn step(&self, state: StateId, symbol: Symbol) -> StateId {
        self.transitions[state.index()][symbol.index()]
    }

    /// Runs the automaton from an arbitrary state over `word`.
    #[must_use]
    pub fn run_from(&self, state: StateId, word: &Word) -> StateId {
        word.symbols().iter().fold(state, |q, &s| self.step(q, s))
    }

    /// Runs the automaton from `q₀` over `word`.
    #[must_use]
    pub fn run(&self, word: &Word) -> StateId {
        self.run_from(self.start, word)
    }

    /// Whether `word ∈ L(self)`.
    #[must_use]
    pub fn accepts(&self, word: &Word) -> bool {
        self.is_accepting(self.run(word))
    }

    /// The complement automaton: accepts exactly the words this one rejects.
    #[must_use]
    pub fn complement(&self) -> Dfa {
        let mut out = self.clone();
        for b in &mut out.accepting {
            *b = !*b;
        }
        out
    }

    /// Product construction with a boolean combiner on acceptance.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::AlphabetMismatch`] if the alphabets differ.
    pub fn product(
        &self,
        other: &Dfa,
        combine: impl Fn(bool, bool) -> bool,
    ) -> Result<Dfa, AutomataError> {
        if self.alphabet != other.alphabet {
            return Err(AutomataError::AlphabetMismatch);
        }
        let n2 = other.state_count();
        let pair_id = |a: StateId, b: StateId| a.index() * n2 + b.index();
        let count = self.state_count() * n2;
        let mut transitions = Vec::with_capacity(count);
        let mut accepting = Vec::with_capacity(count);
        for qa in 0..self.state_count() {
            for qb in 0..n2 {
                let mut row = Vec::with_capacity(self.alphabet.len());
                for s in self.alphabet.symbols() {
                    let ta = self.step(StateId(qa as u32), s);
                    let tb = other.step(StateId(qb as u32), s);
                    row.push(StateId(pair_id(ta, tb) as u32));
                }
                transitions.push(row);
                accepting.push(combine(self.accepting[qa], other.accepting[qb]));
            }
        }
        Ok(Dfa {
            alphabet: self.alphabet.clone(),
            transitions,
            accepting,
            start: StateId(pair_id(self.start, other.start) as u32),
        })
    }

    /// Intersection `L(self) ∩ L(other)`.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::AlphabetMismatch`] if the alphabets differ.
    pub fn intersect(&self, other: &Dfa) -> Result<Dfa, AutomataError> {
        self.product(other, |a, b| a && b)
    }

    /// Union `L(self) ∪ L(other)`.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::AlphabetMismatch`] if the alphabets differ.
    pub fn union(&self, other: &Dfa) -> Result<Dfa, AutomataError> {
        self.product(other, |a, b| a || b)
    }

    /// Symmetric difference `L(self) Δ L(other)` — empty iff equivalent.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::AlphabetMismatch`] if the alphabets differ.
    pub fn symmetric_difference(&self, other: &Dfa) -> Result<Dfa, AutomataError> {
        self.product(other, |a, b| a != b)
    }

    /// Restricts to states reachable from the start (preserves language).
    #[must_use]
    pub fn trimmed(&self) -> Dfa {
        let mut reachable = vec![false; self.state_count()];
        let mut queue = VecDeque::from([self.start]);
        reachable[self.start.index()] = true;
        while let Some(q) = queue.pop_front() {
            for s in self.alphabet.symbols() {
                let t = self.step(q, s);
                if !reachable[t.index()] {
                    reachable[t.index()] = true;
                    queue.push_back(t);
                }
            }
        }
        let mut remap = vec![u32::MAX; self.state_count()];
        let mut next = 0u32;
        for (i, &r) in reachable.iter().enumerate() {
            if r {
                remap[i] = next;
                next += 1;
            }
        }
        let mut transitions = Vec::with_capacity(next as usize);
        let mut accepting = Vec::with_capacity(next as usize);
        for (q, &r) in reachable.iter().enumerate() {
            if !r {
                continue;
            }
            transitions
                .push(self.transitions[q].iter().map(|t| StateId(remap[t.index()])).collect());
            accepting.push(self.accepting[q]);
        }
        Dfa {
            alphabet: self.alphabet.clone(),
            transitions,
            accepting,
            start: StateId(remap[self.start.index()]),
        }
    }

    /// Whether `L(self) = ∅`.
    #[must_use]
    pub fn is_empty_language(&self) -> bool {
        self.shortest_accepted().is_none()
    }

    /// A shortest accepted word, or `None` if the language is empty.
    ///
    /// Breadth-first search over states; the result has minimal length and
    /// is lexicographically least among those (by symbol order).
    #[must_use]
    pub fn shortest_accepted(&self) -> Option<Word> {
        if self.is_accepting(self.start) {
            return Some(Word::new());
        }
        let mut prev: Vec<Option<(StateId, Symbol)>> = vec![None; self.state_count()];
        let mut seen = vec![false; self.state_count()];
        seen[self.start.index()] = true;
        let mut queue = VecDeque::from([self.start]);
        while let Some(q) = queue.pop_front() {
            for s in self.alphabet.symbols() {
                let t = self.step(q, s);
                if seen[t.index()] {
                    continue;
                }
                seen[t.index()] = true;
                prev[t.index()] = Some((q, s));
                if self.is_accepting(t) {
                    // Walk back to the start.
                    let mut letters = Vec::new();
                    let mut cur = t;
                    while let Some((p, sym)) = prev[cur.index()] {
                        letters.push(sym);
                        cur = p;
                    }
                    letters.reverse();
                    return Some(Word::from_symbols(letters));
                }
                queue.push_back(t);
            }
        }
        None
    }

    /// Whether the two automata recognize the same language.
    ///
    /// Decided by emptiness of the symmetric difference, so it is exact,
    /// not sampled.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::AlphabetMismatch`] if the alphabets differ.
    pub fn equivalent(&self, other: &Dfa) -> Result<bool, AutomataError> {
        Ok(self.symmetric_difference(other)?.trimmed().is_empty_language())
    }

    /// Hopcroft-minimized equivalent automaton (trimmed first).
    ///
    /// The result has the minimum possible number of states; the paper's
    /// `⌈log |Q|⌉` per-message cost of Theorem 1 is measured against this.
    #[must_use]
    pub fn minimized(&self) -> Dfa {
        crate::minimize::minimize(self)
    }

    pub(crate) fn parts(&self) -> (&Alphabet, &[Vec<StateId>], &[bool], StateId) {
        (&self.alphabet, &self.transitions, &self.accepting, self.start)
    }

    pub(crate) fn from_parts(
        alphabet: Alphabet,
        transitions: Vec<Vec<StateId>>,
        accepting: Vec<bool>,
        start: StateId,
    ) -> Self {
        Self { alphabet, transitions, accepting, start }
    }
}

/// Incremental [`Dfa`] constructor.
///
/// Add states, wire transitions, pick a start state, then
/// [`build`](DfaBuilder::build). Missing transitions are an error unless a
/// default sink is configured with
/// [`complete_missing_to_sink`](DfaBuilder::complete_missing_to_sink).
#[derive(Debug, Clone)]
pub struct DfaBuilder {
    alphabet: Alphabet,
    transitions: Vec<Vec<Option<StateId>>>,
    accepting: Vec<bool>,
    start: Option<StateId>,
    sink_missing: bool,
}

impl DfaBuilder {
    /// Creates a builder for automata over `alphabet`.
    #[must_use]
    pub fn new(alphabet: Alphabet) -> Self {
        Self {
            alphabet,
            transitions: Vec::new(),
            accepting: Vec::new(),
            start: None,
            sink_missing: false,
        }
    }

    /// Adds a state and returns its id.
    pub fn add_state(&mut self, accepting: bool) -> StateId {
        let id = StateId(self.transitions.len() as u32);
        self.transitions.push(vec![None; self.alphabet.len()]);
        self.accepting.push(accepting);
        id
    }

    /// Sets `δ(from, symbol) = to` (overwrites any previous edge).
    ///
    /// # Panics
    ///
    /// Panics if `from` or `to` has not been added, or `symbol` is out of
    /// range for the alphabet.
    pub fn set_transition(&mut self, from: StateId, symbol: Symbol, to: StateId) -> &mut Self {
        assert!(from.index() < self.transitions.len(), "unknown source state");
        assert!(to.index() < self.transitions.len(), "unknown target state");
        assert!(symbol.index() < self.alphabet.len(), "symbol out of range");
        self.transitions[from.index()][symbol.index()] = Some(to);
        self
    }

    /// Chooses the start state.
    ///
    /// # Panics
    ///
    /// Panics if `start` has not been added.
    pub fn set_start(&mut self, start: StateId) -> &mut Self {
        assert!(start.index() < self.transitions.len(), "unknown start state");
        self.start = Some(start);
        self
    }

    /// Routes any transition left unset to a fresh non-accepting sink.
    pub fn complete_missing_to_sink(&mut self) -> &mut Self {
        self.sink_missing = true;
        self
    }

    /// Finishes construction.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::MalformedDfa`] if no states were added, no
    /// start was set, or (without
    /// [`complete_missing_to_sink`](DfaBuilder::complete_missing_to_sink))
    /// some transition is missing.
    pub fn build(mut self) -> Result<Dfa, AutomataError> {
        if self.transitions.is_empty() {
            return Err(AutomataError::MalformedDfa("no states".into()));
        }
        let start =
            self.start.ok_or_else(|| AutomataError::MalformedDfa("no start state".into()))?;
        let missing = self.transitions.iter().any(|row| row.iter().any(Option::is_none));
        let sink = if missing {
            if !self.sink_missing {
                return Err(AutomataError::MalformedDfa(
                    "missing transition (call complete_missing_to_sink to allow)".into(),
                ));
            }
            let sink = StateId(self.transitions.len() as u32);
            self.transitions.push(vec![Some(sink); self.alphabet.len()]);
            self.accepting.push(false);
            Some(sink)
        } else {
            None
        };
        let transitions = self
            .transitions
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|t| t.or(sink).expect("missing transitions were completed"))
                    .collect()
            })
            .collect();
        Ok(Dfa { alphabet: self.alphabet, transitions, accepting: self.accepting, start })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn even_a() -> Dfa {
        let sigma = Alphabet::from_chars("ab").unwrap();
        Dfa::from_fn(
            sigma.clone(),
            2,
            0,
            |q| q == 0,
            |q, s| {
                if sigma.char_of(s) == 'a' {
                    1 - q
                } else {
                    q
                }
            },
        )
        .unwrap()
    }

    fn ends_in_b() -> Dfa {
        let sigma = Alphabet::from_chars("ab").unwrap();
        Dfa::from_fn(sigma.clone(), 2, 0, |q| q == 1, |_, s| usize::from(sigma.char_of(s) == 'b'))
            .unwrap()
    }

    fn w(text: &str) -> Word {
        Word::from_str(text, &Alphabet::from_chars("ab").unwrap()).unwrap()
    }

    #[test]
    fn run_and_accept() {
        let d = even_a();
        assert!(d.accepts(&w("")));
        assert!(d.accepts(&w("bb")));
        assert!(d.accepts(&w("aab")));
        assert!(!d.accepts(&w("a")));
        assert!(!d.accepts(&w("baaab")));
    }

    #[test]
    fn complement_flips_acceptance() {
        let d = even_a();
        let c = d.complement();
        for text in ["", "a", "ab", "aa", "bab", "aabb"] {
            assert_eq!(d.accepts(&w(text)), !c.accepts(&w(text)), "{text}");
        }
    }

    #[test]
    fn product_ops() {
        let d = even_a();
        let e = ends_in_b();
        let both = d.intersect(&e).unwrap();
        assert!(both.accepts(&w("aab")));
        assert!(!both.accepts(&w("ab"))); // odd a's
        assert!(!both.accepts(&w("aa"))); // doesn't end in b
        let either = d.union(&e).unwrap();
        assert!(either.accepts(&w("ab")));
        assert!(either.accepts(&w("aa")));
        assert!(!either.accepts(&w("a")));
    }

    #[test]
    fn alphabet_mismatch_detected() {
        let d = even_a();
        let other =
            Dfa::from_fn(Alphabet::from_chars("xy").unwrap(), 1, 0, |_| true, |q, _| q).unwrap();
        assert!(matches!(d.intersect(&other), Err(AutomataError::AlphabetMismatch)));
    }

    #[test]
    fn trim_drops_unreachable() {
        let sigma = Alphabet::from_chars("a").unwrap();
        // State 1 is unreachable.
        let d = Dfa::from_fn(sigma, 3, 0, |q| q == 2, |q, _| if q == 0 { 2 } else { q }).unwrap();
        let t = d.trimmed();
        assert_eq!(t.state_count(), 2);
        assert!(t.accepts(&Word::from_str("a", t.alphabet()).unwrap()));
        assert!(!t.accepts(&Word::new()));
    }

    #[test]
    fn shortest_accepted_is_bfs_minimal() {
        let d = even_a().intersect(&ends_in_b()).unwrap();
        // Shortest word with even 'a's ending in 'b' is "b".
        let shortest = d.shortest_accepted().unwrap();
        assert_eq!(shortest.render(d.alphabet()), "b");

        let empty = even_a().intersect(&even_a().complement()).unwrap();
        assert!(empty.is_empty_language());
        assert!(empty.shortest_accepted().is_none());
    }

    #[test]
    fn shortest_accepted_empty_word() {
        let d = even_a();
        assert_eq!(d.shortest_accepted().unwrap().len(), 0);
    }

    #[test]
    fn equivalence_is_exact() {
        let d = even_a();
        // Same language built a different way: product with a universal DFA.
        let sigma = d.alphabet().clone();
        let universal = Dfa::from_fn(sigma, 1, 0, |_| true, |q, _| q).unwrap();
        let same = d.intersect(&universal).unwrap();
        assert!(d.equivalent(&same).unwrap());
        assert!(!d.equivalent(&d.complement()).unwrap());
    }

    #[test]
    fn builder_happy_path() {
        let sigma = Alphabet::from_chars("ab").unwrap();
        let mut b = DfaBuilder::new(sigma.clone());
        let q0 = b.add_state(false);
        let q1 = b.add_state(true);
        for s in sigma.symbols() {
            b.set_transition(q0, s, q1);
            b.set_transition(q1, s, q0);
        }
        b.set_start(q0);
        let d = b.build().unwrap();
        // Accepts odd-length words.
        assert!(d.accepts(&w("a")));
        assert!(!d.accepts(&w("ab")));
        assert!(d.accepts(&w("aba")));
    }

    #[test]
    fn builder_missing_transition_errors() {
        let sigma = Alphabet::from_chars("ab").unwrap();
        let mut b = DfaBuilder::new(sigma);
        let q0 = b.add_state(true);
        b.set_start(q0);
        assert!(matches!(b.build(), Err(AutomataError::MalformedDfa(_))));
    }

    #[test]
    fn builder_sink_completion() {
        let sigma = Alphabet::from_chars("ab").unwrap();
        let mut b = DfaBuilder::new(sigma.clone());
        let q0 = b.add_state(false);
        let q1 = b.add_state(true);
        let a = sigma.symbol('a').unwrap();
        b.set_transition(q0, a, q1);
        b.set_start(q0);
        b.complete_missing_to_sink();
        let d = b.build().unwrap();
        // Language is exactly {"a"}.
        assert!(d.accepts(&w("a")));
        assert!(!d.accepts(&w("b")));
        assert!(!d.accepts(&w("aa")));
        assert!(!d.accepts(&w("")));
        assert_eq!(d.state_count(), 3);
    }

    #[test]
    fn builder_no_start_errors() {
        let sigma = Alphabet::from_chars("a").unwrap();
        let mut b = DfaBuilder::new(sigma);
        let q = b.add_state(true);
        b.set_transition(q, Symbol(0), q);
        assert!(matches!(b.build(), Err(AutomataError::MalformedDfa(_))));
    }

    #[test]
    fn from_fn_validates() {
        let sigma = Alphabet::from_chars("a").unwrap();
        assert!(Dfa::from_fn(sigma.clone(), 0, 0, |_| true, |q, _| q).is_err());
        assert!(Dfa::from_fn(sigma.clone(), 1, 5, |_| true, |q, _| q).is_err());
        assert!(Dfa::from_fn(sigma, 1, 0, |_| true, |_, _| 9).is_err());
    }
}
