//! Per-length word counting, enumeration, and uniform sampling.
//!
//! The experiments need, for each language and ring size `n`, words that
//! are *in* the language (to measure accepting executions) and words that
//! are *not* (to measure rejecting ones). For regular workloads this module
//! does it exactly: a dynamic program over the DFA counts the words of each
//! length per state, which yields uniform sampling and full enumeration.

use rand::Rng;

use crate::{Dfa, StateId, Word};

/// Counts, enumerates, and uniformly samples the words of a fixed length
/// accepted by a [`Dfa`].
///
/// Construction runs the counting DP up to `max_len` once; queries are then
/// cheap. Counts saturate at `u128::MAX` (relevant only for alphabets and
/// lengths far beyond the experiments').
///
/// # Examples
///
/// ```rust
/// # use ringleader_automata::{Alphabet, Regex, WordSampler};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sigma = Alphabet::from_chars("ab")?;
/// let dfa = Regex::parse("(ab)*", &sigma)?.compile();
/// let sampler = WordSampler::new(&dfa, 8);
/// assert_eq!(sampler.count(4), 1); // only "abab"
/// assert_eq!(sampler.count(5), 0);
/// let words = sampler.enumerate(6);
/// assert_eq!(words.len(), 1);
/// assert_eq!(words[0].render(&sigma), "ababab");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct WordSampler {
    dfa: Dfa,
    /// `counts[len][state]` = number of words of length `len` leading from
    /// `state` to an accepting state.
    counts: Vec<Vec<u128>>,
}

impl WordSampler {
    /// Builds the counting tables for word lengths `0..=max_len`.
    #[must_use]
    pub fn new(dfa: &Dfa, max_len: usize) -> Self {
        let n = dfa.state_count();
        let mut counts: Vec<Vec<u128>> = Vec::with_capacity(max_len + 1);
        counts.push((0..n).map(|q| u128::from(dfa.is_accepting(StateId(q as u32)))).collect());
        for len in 1..=max_len {
            let prev = &counts[len - 1];
            let row: Vec<u128> = (0..n)
                .map(|q| {
                    dfa.alphabet()
                        .symbols()
                        .map(|s| prev[dfa.step(StateId(q as u32), s).index()])
                        .fold(0u128, u128::saturating_add)
                })
                .collect();
            counts.push(row);
        }
        Self { dfa: dfa.clone(), counts }
    }

    /// The automaton the sampler was built from.
    #[must_use]
    pub fn dfa(&self) -> &Dfa {
        &self.dfa
    }

    /// Highest length the tables cover.
    #[must_use]
    pub fn max_len(&self) -> usize {
        self.counts.len() - 1
    }

    /// Number of accepted words of exactly length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len > max_len`.
    #[must_use]
    pub fn count(&self, len: usize) -> u128 {
        self.counts[len][self.dfa.start().index()]
    }

    /// Samples a uniformly random accepted word of length `len`, or `None`
    /// if no such word exists.
    ///
    /// # Panics
    ///
    /// Panics if `len > max_len`.
    pub fn sample<R: Rng + ?Sized>(&self, len: usize, rng: &mut R) -> Option<Word> {
        let total = self.count(len);
        if total == 0 {
            return None;
        }
        let mut target = random_u128_below(rng, total);
        let mut word = Word::new();
        let mut state = self.dfa.start();
        for remaining in (0..len).rev() {
            for s in self.dfa.alphabet().symbols() {
                let next = self.dfa.step(state, s);
                let ways = self.counts[remaining][next.index()];
                if target < ways {
                    word.push(s);
                    state = next;
                    break;
                }
                target -= ways;
            }
        }
        debug_assert_eq!(word.len(), len);
        debug_assert!(self.dfa.accepts(&word));
        Some(word)
    }

    /// Enumerates every accepted word of length `len`, in symbol order.
    ///
    /// Intended for exhaustive small-`n` verification; the result can be
    /// astronomically large for permissive automata at big lengths, so
    /// callers should gate on [`count`](WordSampler::count) first.
    ///
    /// # Panics
    ///
    /// Panics if `len > max_len`.
    #[must_use]
    pub fn enumerate(&self, len: usize) -> Vec<Word> {
        let mut out = Vec::new();
        let mut prefix = Word::new();
        self.enumerate_rec(self.dfa.start(), len, &mut prefix, &mut out);
        out
    }

    fn enumerate_rec(
        &self,
        state: StateId,
        remaining: usize,
        prefix: &mut Word,
        out: &mut Vec<Word>,
    ) {
        if remaining == 0 {
            if self.dfa.is_accepting(state) {
                out.push(prefix.clone());
            }
            return;
        }
        for s in self.dfa.alphabet().symbols() {
            let next = self.dfa.step(state, s);
            if self.counts[remaining - 1][next.index()] == 0 {
                continue; // prune dead branches
            }
            prefix.push(s);
            self.enumerate_rec(next, remaining - 1, prefix, out);
            let mut symbols = prefix.symbols().to_vec();
            symbols.pop();
            *prefix = Word::from_symbols(symbols);
        }
    }
}

/// Uniform value in `0..bound` (bound > 0) built from two `u64` draws.
fn random_u128_below<R: Rng + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if let Ok(small) = u64::try_from(bound) {
        return u128::from(rng.gen_range(0..small));
    }
    // Rejection sampling on the full 128-bit range.
    loop {
        let hi = u128::from(rng.gen::<u64>());
        let lo = u128::from(rng.gen::<u64>());
        let v = (hi << 64) | lo;
        // Accept if within the largest multiple of `bound`.
        let limit = u128::MAX - (u128::MAX % bound);
        if v < limit {
            return v % bound;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Alphabet, Regex};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn compile(pattern: &str) -> Dfa {
        let sigma = Alphabet::from_chars("ab").unwrap();
        Regex::parse(pattern, &sigma).unwrap().compile()
    }

    #[test]
    fn counts_match_brute_force() {
        let sigma = Alphabet::from_chars("ab").unwrap();
        for pattern in ["(ab)*", "a*b*", "(a|b)*abb", ".?.?.?"] {
            let dfa = compile(pattern);
            let sampler = WordSampler::new(&dfa, 10);
            for len in 0..=10usize {
                let brute = (0..(1usize << len))
                    .filter(|idx| {
                        let text: String =
                            (0..len).map(|i| if (idx >> i) & 1 == 0 { 'a' } else { 'b' }).collect();
                        dfa.accepts(&Word::from_str(&text, &sigma).unwrap())
                    })
                    .count() as u128;
                assert_eq!(sampler.count(len), brute, "{pattern} at len {len}");
            }
        }
    }

    #[test]
    fn enumerate_matches_count_and_accepts() {
        let dfa = compile("a*b*");
        let sampler = WordSampler::new(&dfa, 9);
        for len in 0..=9usize {
            let words = sampler.enumerate(len);
            assert_eq!(words.len() as u128, sampler.count(len));
            for w in &words {
                assert_eq!(w.len(), len);
                assert!(dfa.accepts(w));
            }
            // Distinct.
            let set: std::collections::BTreeSet<_> = words.iter().collect();
            assert_eq!(set.len(), words.len());
        }
    }

    #[test]
    fn sample_returns_accepted_words_of_right_length() {
        let dfa = compile("(a|b)*abb");
        let sampler = WordSampler::new(&dfa, 32);
        let mut rng = StdRng::seed_from_u64(7);
        for len in [3usize, 4, 10, 32] {
            for _ in 0..50 {
                let w = sampler.sample(len, &mut rng).unwrap();
                assert_eq!(w.len(), len);
                assert!(dfa.accepts(&w));
            }
        }
    }

    #[test]
    fn sample_is_roughly_uniform() {
        // a*b* has length-3 words: aaa aab abb bbb → 4 words.
        let dfa = compile("a*b*");
        let sampler = WordSampler::new(&dfa, 3);
        assert_eq!(sampler.count(3), 4);
        let mut rng = StdRng::seed_from_u64(42);
        let mut histogram = std::collections::BTreeMap::new();
        let draws = 4000;
        for _ in 0..draws {
            let w = sampler.sample(3, &mut rng).unwrap();
            *histogram.entry(w.render(dfa.alphabet())).or_insert(0usize) += 1;
        }
        assert_eq!(histogram.len(), 4);
        for (word, n) in histogram {
            let expected = draws / 4;
            assert!(
                n > expected / 2 && n < expected * 2,
                "{word} drawn {n} times, expected ~{expected}"
            );
        }
    }

    #[test]
    fn empty_lengths_return_none() {
        let dfa = compile("(ab)*");
        let sampler = WordSampler::new(&dfa, 7);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sampler.count(3), 0);
        assert!(sampler.sample(3, &mut rng).is_none());
        assert!(sampler.enumerate(5).is_empty());
    }

    #[test]
    fn length_zero_is_the_empty_word() {
        let dfa = compile("a*");
        let sampler = WordSampler::new(&dfa, 4);
        assert_eq!(sampler.count(0), 1);
        let words = sampler.enumerate(0);
        assert_eq!(words.len(), 1);
        assert!(words[0].is_empty());
    }

    #[test]
    fn complement_sampler_gives_negative_examples() {
        let dfa = compile("(ab)*");
        let negative = WordSampler::new(&dfa.complement(), 8);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..40 {
            let w = negative.sample(8, &mut rng).unwrap();
            assert!(!dfa.accepts(&w));
        }
    }

    #[test]
    fn max_len_reports_table_size() {
        let dfa = compile("a*");
        assert_eq!(WordSampler::new(&dfa, 13).max_len(), 13);
    }
}
