//! Errors for automaton construction and use.

use std::error::Error;
use std::fmt;

/// An error produced while building or combining automata.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AutomataError {
    /// The alphabet definition was empty, duplicated, or oversized.
    InvalidAlphabet(String),
    /// A character outside the alphabet appeared in a word or regex.
    UnknownSymbol(char),
    /// A regex failed to parse; the payload describes where and why.
    RegexParse {
        /// Byte offset of the failure in the pattern.
        at: usize,
        /// What went wrong.
        message: String,
    },
    /// Two automata over different alphabets were combined.
    AlphabetMismatch,
    /// A DFA was built with a dangling state reference or no states.
    MalformedDfa(String),
}

impl fmt::Display for AutomataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutomataError::InvalidAlphabet(msg) => write!(f, "invalid alphabet: {msg}"),
            AutomataError::UnknownSymbol(c) => write!(f, "symbol {c:?} is not in the alphabet"),
            AutomataError::RegexParse { at, message } => {
                write!(f, "regex parse error at byte {at}: {message}")
            }
            AutomataError::AlphabetMismatch => {
                write!(f, "automata are defined over different alphabets")
            }
            AutomataError::MalformedDfa(msg) => write!(f, "malformed DFA: {msg}"),
        }
    }
}

impl Error for AutomataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        assert_eq!(
            AutomataError::UnknownSymbol('x').to_string(),
            "symbol 'x' is not in the alphabet"
        );
        assert!(AutomataError::AlphabetMismatch.to_string().contains("different alphabets"));
        let e = AutomataError::RegexParse { at: 3, message: "unbalanced ')'".into() };
        assert!(e.to_string().contains("byte 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AutomataError>();
    }
}
