//! Alphabets, symbols, and words.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::AutomataError;

/// One letter of an [`Alphabet`], stored as a dense index.
///
/// A `Symbol` is meaningful only relative to the alphabet that produced it;
/// the index form keeps transition tables dense and lets the wire encoding
/// of a letter cost exactly `⌈log |Σ|⌉` bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Symbol(pub u16);

impl Symbol {
    /// The dense index of this symbol within its alphabet.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A finite, ordered alphabet `Σ`.
///
/// Alphabets are cheap to clone (the symbol table is shared) and compare by
/// value. Symbols display as the character they were declared with.
///
/// # Examples
///
/// ```rust
/// # use ringleader_automata::Alphabet;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sigma = Alphabet::from_chars("abc")?;
/// assert_eq!(sigma.len(), 3);
/// let a = sigma.symbol('a').unwrap();
/// assert_eq!(sigma.char_of(a), 'a');
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Alphabet {
    chars: Arc<Vec<char>>,
}

impl Alphabet {
    /// Builds an alphabet from the distinct characters of `chars`, in order.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::InvalidAlphabet`] if `chars` is empty or
    /// contains a duplicate character.
    pub fn from_chars(chars: &str) -> Result<Self, AutomataError> {
        let list: Vec<char> = chars.chars().collect();
        if list.is_empty() {
            return Err(AutomataError::InvalidAlphabet("alphabet must be non-empty".into()));
        }
        for (i, c) in list.iter().enumerate() {
            if list[..i].contains(c) {
                return Err(AutomataError::InvalidAlphabet(format!("duplicate character {c:?}")));
            }
        }
        if list.len() > u16::MAX as usize {
            return Err(AutomataError::InvalidAlphabet("alphabet too large".into()));
        }
        Ok(Self { chars: Arc::new(list) })
    }

    /// Builds the binary alphabet `{0, 1}` rendered as `'0'`/`'1'`.
    #[must_use]
    pub fn binary() -> Self {
        Self::from_chars("01").expect("binary alphabet is valid")
    }

    /// Builds an alphabet of `k` generated symbols `s0..s{k-1}` rendered as
    /// successive Unicode codepoints starting at `'A'` (then lowercase,
    /// then digits). Used by the Note-7.5 trade-off family, which needs
    /// `2^k` letters.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::InvalidAlphabet`] if `k` is 0 or greater
    /// than 62.
    pub fn generated(k: usize) -> Result<Self, AutomataError> {
        const POOL: &str = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
        if k == 0 || k > POOL.chars().count() {
            return Err(AutomataError::InvalidAlphabet(format!(
                "generated alphabet size {k} out of range 1..=62"
            )));
        }
        let take: String = POOL.chars().take(k).collect();
        Self::from_chars(&take)
    }

    /// Number of symbols `|Σ|`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.chars.len()
    }

    /// Always `false`: alphabets are non-empty by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Looks up the symbol declared for character `c`.
    #[must_use]
    pub fn symbol(&self, c: char) -> Option<Symbol> {
        self.chars.iter().position(|&x| x == c).map(|i| Symbol(i as u16))
    }

    /// The character symbol `s` was declared with.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a symbol of this alphabet.
    #[must_use]
    pub fn char_of(&self, s: Symbol) -> char {
        self.chars[s.index()]
    }

    /// Iterates over all symbols in declaration order.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        (0..self.chars.len()).map(|i| Symbol(i as u16))
    }
}

/// A word `w ∈ Σ*` — the pattern written around the ring.
///
/// Position 0 is the leader's letter `σ₁`.
///
/// # Examples
///
/// ```rust
/// # use ringleader_automata::{Alphabet, Word};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sigma = Alphabet::from_chars("ab")?;
/// let w = Word::from_str("abba", &sigma)?;
/// assert_eq!(w.len(), 4);
/// assert_eq!(w.render(&sigma), "abba");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Word {
    symbols: Vec<Symbol>,
}

impl Word {
    /// Creates an empty word.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a word from raw symbols.
    #[must_use]
    pub fn from_symbols(symbols: Vec<Symbol>) -> Self {
        Self { symbols }
    }

    /// Parses `text` into a word over `alphabet`.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::UnknownSymbol`] for any character not in
    /// the alphabet.
    pub fn from_str(text: &str, alphabet: &Alphabet) -> Result<Self, AutomataError> {
        let mut symbols = Vec::with_capacity(text.len());
        for c in text.chars() {
            symbols.push(alphabet.symbol(c).ok_or(AutomataError::UnknownSymbol(c))?);
        }
        Ok(Self { symbols })
    }

    /// Number of letters (the ring size `n` when this word labels a ring).
    #[must_use]
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Returns `true` for the empty word `ε`.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Letter at `index` (0-based; the leader holds index 0).
    #[must_use]
    pub fn get(&self, index: usize) -> Option<Symbol> {
        self.symbols.get(index).copied()
    }

    /// The underlying symbols.
    #[must_use]
    pub fn symbols(&self) -> &[Symbol] {
        &self.symbols
    }

    /// Appends a letter.
    pub fn push(&mut self, s: Symbol) {
        self.symbols.push(s);
    }

    /// Renders the word back to characters using `alphabet`.
    #[must_use]
    pub fn render(&self, alphabet: &Alphabet) -> String {
        self.symbols.iter().map(|&s| alphabet.char_of(s)).collect()
    }

    /// The reversal of this word.
    #[must_use]
    pub fn reversed(&self) -> Word {
        let mut symbols = self.symbols.clone();
        symbols.reverse();
        Word { symbols }
    }

    /// Concatenation `self · other`.
    #[must_use]
    pub fn concat(&self, other: &Word) -> Word {
        let mut symbols = self.symbols.clone();
        symbols.extend_from_slice(&other.symbols);
        Word { symbols }
    }
}

impl FromIterator<Symbol> for Word {
    fn from_iter<I: IntoIterator<Item = Symbol>>(iter: I) -> Self {
        Self { symbols: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alphabet_rejects_empty_and_duplicates() {
        assert!(Alphabet::from_chars("").is_err());
        assert!(Alphabet::from_chars("aa").is_err());
        assert!(Alphabet::from_chars("aba").is_err());
        assert!(Alphabet::from_chars("abc").is_ok());
    }

    #[test]
    fn symbol_lookup_roundtrip() {
        let sigma = Alphabet::from_chars("xyz").unwrap();
        for (i, c) in "xyz".chars().enumerate() {
            let s = sigma.symbol(c).unwrap();
            assert_eq!(s.index(), i);
            assert_eq!(sigma.char_of(s), c);
        }
        assert_eq!(sigma.symbol('w'), None);
    }

    #[test]
    fn generated_alphabets() {
        let g = Alphabet::generated(4).unwrap();
        assert_eq!(g.len(), 4);
        assert!(g.symbol('A').is_some());
        assert!(g.symbol('D').is_some());
        assert!(g.symbol('E').is_none());
        assert!(Alphabet::generated(0).is_err());
        assert!(Alphabet::generated(63).is_err());
        assert_eq!(Alphabet::generated(62).unwrap().len(), 62);
    }

    #[test]
    fn binary_alphabet() {
        let b = Alphabet::binary();
        assert_eq!(b.len(), 2);
        assert_eq!(b.char_of(Symbol(0)), '0');
        assert_eq!(b.char_of(Symbol(1)), '1');
    }

    #[test]
    fn word_parse_render_roundtrip() {
        let sigma = Alphabet::from_chars("ab").unwrap();
        for text in ["", "a", "b", "abba", "aaabbb"] {
            let w = Word::from_str(text, &sigma).unwrap();
            assert_eq!(w.render(&sigma), text);
            assert_eq!(w.len(), text.len());
        }
        assert!(matches!(Word::from_str("abc", &sigma), Err(AutomataError::UnknownSymbol('c'))));
    }

    #[test]
    fn word_ops() {
        let sigma = Alphabet::from_chars("ab").unwrap();
        let w = Word::from_str("aab", &sigma).unwrap();
        assert_eq!(w.reversed().render(&sigma), "baa");
        let v = Word::from_str("ba", &sigma).unwrap();
        assert_eq!(w.concat(&v).render(&sigma), "aabba");
        assert_eq!(w.get(0), sigma.symbol('a'));
        assert_eq!(w.get(2), sigma.symbol('b'));
        assert_eq!(w.get(3), None);
    }

    #[test]
    fn word_from_iterator() {
        let sigma = Alphabet::from_chars("ab").unwrap();
        let w: Word = sigma.symbols().collect();
        assert_eq!(w.render(&sigma), "ab");
    }

    #[test]
    fn alphabet_clone_is_cheap_and_equal() {
        let a = Alphabet::from_chars("abc").unwrap();
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.len(), 3);
    }
}
