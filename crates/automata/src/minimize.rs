//! Hopcroft DFA minimization.
//!
//! Used both for workload preparation (Theorem 1's `⌈log |Q|⌉` message
//! width is only meaningful against the *minimal* automaton) and for the
//! Theorem 2 message-graph extraction, whose output is minimized before
//! being compared with the reference automaton.

use std::collections::{BTreeMap, BTreeSet};

use crate::{Dfa, StateId};

/// Returns the minimal DFA equivalent to `dfa`.
///
/// The input is trimmed to its reachable part first; the classic Hopcroft
/// partition-refinement then runs in `O(|Σ| · |Q| log |Q|)`. States of the
/// result are numbered so the start state is 0 and the rest follow in
/// first-visit breadth-first order, which makes minimized automata
/// comparable with `==` when built from the same language.
pub(crate) fn minimize(dfa: &Dfa) -> Dfa {
    let dfa = dfa.trimmed();
    let (alphabet, transitions, accepting, start) = dfa.parts();
    let n = transitions.len();
    let k = alphabet.len();

    // Reverse transition lists: rev[symbol][target] = sources.
    let mut rev: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); n]; k];
    for (q, row) in transitions.iter().enumerate() {
        for (s, t) in row.iter().enumerate() {
            rev[s][t.index()].push(q as u32);
        }
    }

    // Initial partition: accepting / rejecting (skip empty blocks).
    let mut block_of: Vec<u32> = accepting.iter().map(|&a| u32::from(a)).collect();
    let acc_count = accepting.iter().filter(|&&a| a).count();
    let mut blocks: Vec<Vec<u32>> = if acc_count == 0 || acc_count == n {
        block_of.iter_mut().for_each(|b| *b = 0);
        vec![(0..n as u32).collect()]
    } else {
        let mut rej = Vec::new();
        let mut acc = Vec::new();
        for (q, &a) in accepting.iter().enumerate() {
            if a {
                acc.push(q as u32);
            } else {
                rej.push(q as u32);
            }
        }
        block_of = accepting.iter().map(|&a| u32::from(a)).collect();
        vec![rej, acc]
    };

    // Worklist of (block index, symbol) splitters.
    let mut work: BTreeSet<(u32, u16)> = BTreeSet::new();
    if blocks.len() == 2 {
        let smaller = u32::from(blocks[1].len() < blocks[0].len());
        for s in 0..k as u16 {
            work.insert((smaller, s));
        }
    } else {
        for s in 0..k as u16 {
            work.insert((0, s));
        }
    }

    while let Some(&(block_idx, sym)) = work.iter().next() {
        work.remove(&(block_idx, sym));
        // X = states with a `sym`-transition into the splitter block.
        let mut x: BTreeSet<u32> = BTreeSet::new();
        for &t in &blocks[block_idx as usize] {
            for &src in &rev[sym as usize][t as usize] {
                x.insert(src);
            }
        }
        if x.is_empty() {
            continue;
        }
        // For each block B hit by X, split into B∩X and B\X.
        let mut touched: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for &q in &x {
            touched.entry(block_of[q as usize]).or_default().push(q);
        }
        for (b, inter) in touched {
            let b_len = blocks[b as usize].len();
            if inter.len() == b_len {
                continue; // no split
            }
            // New block gets the intersection (the smaller side is pushed
            // to the worklist below).
            let new_idx = blocks.len() as u32;
            let inter_set: BTreeSet<u32> = inter.iter().copied().collect();
            blocks[b as usize].retain(|q| !inter_set.contains(q));
            for &q in &inter {
                block_of[q as usize] = new_idx;
            }
            blocks.push(inter);
            let small = if blocks[new_idx as usize].len() <= blocks[b as usize].len() {
                new_idx
            } else {
                b
            };
            for s in 0..k as u16 {
                if work.contains(&(b, s)) {
                    // Both halves must be processed if the parent was queued.
                    work.insert((new_idx, s));
                } else {
                    work.insert((small, s));
                }
            }
        }
    }

    // Rebuild a DFA over blocks, renumbered by BFS from the start block.
    let start_block = block_of[start.index()];
    let mut order: Vec<u32> = Vec::with_capacity(blocks.len());
    let mut pos: BTreeMap<u32, u32> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::from([start_block]);
    pos.insert(start_block, 0);
    order.push(start_block);
    while let Some(b) = queue.pop_front() {
        let repr = blocks[b as usize][0];
        for s in 0..k {
            let t_block = block_of[transitions[repr as usize][s].index()];
            if let std::collections::btree_map::Entry::Vacant(e) = pos.entry(t_block) {
                e.insert(order.len() as u32);
                order.push(t_block);
                queue.push_back(t_block);
            }
        }
    }

    let m = order.len();
    let mut new_transitions = Vec::with_capacity(m);
    let mut new_accepting = Vec::with_capacity(m);
    for &b in &order {
        let repr = blocks[b as usize][0] as usize;
        new_transitions
            .push((0..k).map(|s| StateId(pos[&block_of[transitions[repr][s].index()]])).collect());
        new_accepting.push(accepting[repr]);
    }
    Dfa::from_parts(alphabet.clone(), new_transitions, new_accepting, StateId(0))
}

#[cfg(test)]
mod tests {
    use crate::{Alphabet, Dfa, Regex, Word};

    fn w(text: &str, sigma: &Alphabet) -> Word {
        Word::from_str(text, sigma).unwrap()
    }

    #[test]
    fn already_minimal_is_fixed_point() {
        let sigma = Alphabet::from_chars("ab").unwrap();
        let even_a = Dfa::from_fn(
            sigma.clone(),
            2,
            0,
            |q| q == 0,
            |q, s| {
                if sigma.char_of(s) == 'a' {
                    1 - q
                } else {
                    q
                }
            },
        )
        .unwrap();
        let m = even_a.minimized();
        assert_eq!(m.state_count(), 2);
        assert!(m.equivalent(&even_a).unwrap());
        // Minimizing again changes nothing.
        assert_eq!(m.minimized(), m);
    }

    #[test]
    fn redundant_states_collapse() {
        // 4-state automaton for "odd length" with two duplicated states.
        let sigma = Alphabet::from_chars("ab").unwrap();
        let d = Dfa::from_fn(sigma, 4, 0, |q| q % 2 == 1, |q, _| (q + 1) % 4).unwrap();
        let m = d.minimized();
        assert_eq!(m.state_count(), 2);
        assert!(m.equivalent(&d).unwrap());
    }

    #[test]
    fn unreachable_states_do_not_survive() {
        let sigma = Alphabet::from_chars("a").unwrap();
        let d = Dfa::from_fn(sigma, 5, 0, |q| q == 0, |q, _| q.min(1)).unwrap();
        // Only states 0,1 reachable.
        assert!(d.minimized().state_count() <= 2);
    }

    #[test]
    fn all_accepting_collapses_to_one() {
        let sigma = Alphabet::from_chars("ab").unwrap();
        let d = Dfa::from_fn(sigma, 7, 3, |_| true, |q, _| (q + 2) % 7).unwrap();
        assert_eq!(d.minimized().state_count(), 1);
    }

    #[test]
    fn empty_language_collapses_to_one() {
        let sigma = Alphabet::from_chars("ab").unwrap();
        let d = Dfa::from_fn(sigma, 7, 3, |_| false, |q, _| (q + 2) % 7).unwrap();
        assert_eq!(d.minimized().state_count(), 1);
    }

    #[test]
    fn minimization_preserves_language_on_regex_corpus() {
        let sigma = Alphabet::from_chars("ab").unwrap();
        for pattern in ["(ab)*", "a*b*", "(a|b)*abb", "a(a|b)*a|a", "((a|b)(a|b))*"] {
            let d = Regex::parse(pattern, &sigma).unwrap().compile();
            let m = d.minimized();
            assert!(m.equivalent(&d).unwrap(), "{pattern}");
            assert!(m.state_count() <= d.state_count(), "{pattern}");
            // Exhaustive check up to length 8.
            for len in 0..=8usize {
                for idx in 0..(1usize << len) {
                    let text: String =
                        (0..len).map(|i| if (idx >> i) & 1 == 0 { 'a' } else { 'b' }).collect();
                    let word = w(&text, &sigma);
                    assert_eq!(d.accepts(&word), m.accepts(&word), "{pattern} on {text:?}");
                }
            }
        }
    }

    #[test]
    fn classic_counterexample_five_states_to_three() {
        // Textbook example: states {0..4}, accepting {4}, over {a,b};
        // states 1 and 2 are equivalent, 3 and 4 differ.
        let sigma = Alphabet::from_chars("ab").unwrap();
        let trans = [
            [1usize, 2usize], // 0
            [3, 3],           // 1
            [3, 3],           // 2  (same behaviour as 1)
            [4, 4],           // 3
            [4, 4],           // 4
        ];
        let d = Dfa::from_fn(sigma, 5, 0, |q| q == 4, |q, s| trans[q][s.index()]).unwrap();
        let m = d.minimized();
        assert!(m.equivalent(&d).unwrap());
        assert_eq!(m.state_count(), 4); // 0, {1,2}, 3, 4
    }
}
