//! A small regular-expression front-end.
//!
//! Supports the operators needed to state the paper's regular workloads:
//! concatenation, alternation `|`, grouping `(...)`, Kleene star `*`, plus
//! `+`, option `?`, the any-symbol dot `.`, character classes `[abc]`, and
//! backslash escapes for metacharacters. Patterns compile via the Thompson
//! construction to an [`Nfa`] and from there (subset construction) to a
//! complete [`Dfa`].

use crate::{Alphabet, AutomataError, Dfa, Nfa, Symbol};

/// A parsed regular expression over a fixed [`Alphabet`].
///
/// # Examples
///
/// ```rust
/// # use ringleader_automata::{Alphabet, Regex, Word};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sigma = Alphabet::from_chars("ab")?;
/// let re = Regex::parse("a(a|b)*b", &sigma)?;
/// let dfa = re.compile();
/// assert!(dfa.accepts(&Word::from_str("ab", &sigma)?));
/// assert!(dfa.accepts(&Word::from_str("aabab", &sigma)?));
/// assert!(!dfa.accepts(&Word::from_str("ba", &sigma)?));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Regex {
    alphabet: Alphabet,
    ast: Ast,
    pattern: String,
}

#[derive(Debug, Clone)]
enum Ast {
    /// Matches only the empty word.
    Empty,
    /// A single symbol.
    Literal(Symbol),
    /// Any one of the listed symbols (`.` or `[...]`).
    Class(Vec<Symbol>),
    Concat(Box<Ast>, Box<Ast>),
    Alternate(Box<Ast>, Box<Ast>),
    Star(Box<Ast>),
    Plus(Box<Ast>),
    Optional(Box<Ast>),
}

impl Regex {
    /// Parses `pattern` over `alphabet`.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::RegexParse`] with the byte offset of the
    /// first problem, or [`AutomataError::UnknownSymbol`] if a literal is
    /// not in the alphabet.
    pub fn parse(pattern: &str, alphabet: &Alphabet) -> Result<Self, AutomataError> {
        let mut p = Parser { chars: pattern.char_indices().collect(), pos: 0, alphabet };
        let ast = p.alternation()?;
        if p.pos < p.chars.len() {
            return Err(AutomataError::RegexParse {
                at: p.chars[p.pos].0,
                message: format!("unexpected {:?}", p.chars[p.pos].1),
            });
        }
        Ok(Self { alphabet: alphabet.clone(), ast, pattern: pattern.to_owned() })
    }

    /// The original pattern text.
    #[must_use]
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// The alphabet the pattern was parsed against.
    #[must_use]
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Thompson construction to an [`Nfa`].
    #[must_use]
    pub fn to_nfa(&self) -> Nfa {
        let mut nfa = Nfa::new(self.alphabet.clone());
        let (start, end) = build(&mut nfa, &self.ast);
        nfa.set_start(start);
        nfa.add_accepting(end);
        nfa
    }

    /// Compiles to a complete [`Dfa`] (subset construction, not minimized).
    #[must_use]
    pub fn compile(&self) -> Dfa {
        self.to_nfa().determinize()
    }
}

/// Builds the fragment for `ast`, returning `(start, accept)` states.
fn build(nfa: &mut Nfa, ast: &Ast) -> (usize, usize) {
    match ast {
        Ast::Empty => {
            let s = nfa.add_state();
            let e = nfa.add_state();
            nfa.add_epsilon(s, e);
            (s, e)
        }
        Ast::Literal(sym) => {
            let s = nfa.add_state();
            let e = nfa.add_state();
            nfa.add_transition(s, *sym, e);
            (s, e)
        }
        Ast::Class(symbols) => {
            let s = nfa.add_state();
            let e = nfa.add_state();
            for &sym in symbols {
                nfa.add_transition(s, sym, e);
            }
            (s, e)
        }
        Ast::Concat(a, b) => {
            let (sa, ea) = build(nfa, a);
            let (sb, eb) = build(nfa, b);
            nfa.add_epsilon(ea, sb);
            (sa, eb)
        }
        Ast::Alternate(a, b) => {
            let s = nfa.add_state();
            let e = nfa.add_state();
            let (sa, ea) = build(nfa, a);
            let (sb, eb) = build(nfa, b);
            nfa.add_epsilon(s, sa);
            nfa.add_epsilon(s, sb);
            nfa.add_epsilon(ea, e);
            nfa.add_epsilon(eb, e);
            (s, e)
        }
        Ast::Star(a) => {
            let s = nfa.add_state();
            let e = nfa.add_state();
            let (sa, ea) = build(nfa, a);
            nfa.add_epsilon(s, sa);
            nfa.add_epsilon(s, e);
            nfa.add_epsilon(ea, sa);
            nfa.add_epsilon(ea, e);
            (s, e)
        }
        Ast::Plus(a) => {
            let (sa, ea) = build(nfa, a);
            let e = nfa.add_state();
            nfa.add_epsilon(ea, sa);
            nfa.add_epsilon(ea, e);
            (sa, e)
        }
        Ast::Optional(a) => {
            let s = nfa.add_state();
            let e = nfa.add_state();
            let (sa, ea) = build(nfa, a);
            nfa.add_epsilon(s, sa);
            nfa.add_epsilon(s, e);
            nfa.add_epsilon(ea, e);
            (s, e)
        }
    }
}

struct Parser<'a> {
    chars: Vec<(usize, char)>,
    pos: usize,
    alphabet: &'a Alphabet,
}

const METACHARS: &[char] = &['(', ')', '[', ']', '|', '*', '+', '?', '.', '\\'];

impl Parser<'_> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn byte_at(&self) -> usize {
        self.chars
            .get(self.pos)
            .map_or_else(|| self.chars.last().map_or(0, |&(i, c)| i + c.len_utf8()), |&(i, _)| i)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn error(&self, message: impl Into<String>) -> AutomataError {
        AutomataError::RegexParse { at: self.byte_at(), message: message.into() }
    }

    fn alternation(&mut self) -> Result<Ast, AutomataError> {
        let mut left = self.concat()?;
        while self.peek() == Some('|') {
            self.bump();
            let right = self.concat()?;
            left = Ast::Alternate(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn concat(&mut self) -> Result<Ast, AutomataError> {
        let mut parts: Vec<Ast> = Vec::new();
        while let Some(c) = self.peek() {
            if c == ')' || c == '|' {
                break;
            }
            parts.push(self.repeat()?);
        }
        Ok(parts
            .into_iter()
            .reduce(|a, b| Ast::Concat(Box::new(a), Box::new(b)))
            .unwrap_or(Ast::Empty))
    }

    fn repeat(&mut self) -> Result<Ast, AutomataError> {
        let mut atom = self.atom()?;
        while let Some(c) = self.peek() {
            atom = match c {
                '*' => Ast::Star(Box::new(atom)),
                '+' => Ast::Plus(Box::new(atom)),
                '?' => Ast::Optional(Box::new(atom)),
                _ => break,
            };
            self.bump();
        }
        Ok(atom)
    }

    fn atom(&mut self) -> Result<Ast, AutomataError> {
        match self.peek() {
            None => Err(self.error("unexpected end of pattern")),
            Some('(') => {
                self.bump();
                let inner = self.alternation()?;
                if self.bump() != Some(')') {
                    return Err(self.error("expected ')'"));
                }
                Ok(inner)
            }
            Some('[') => {
                self.bump();
                let mut symbols = Vec::new();
                loop {
                    match self.bump() {
                        None => return Err(self.error("unterminated '['")),
                        Some(']') => break,
                        Some('\\') => {
                            let c = self.bump().ok_or_else(|| self.error("dangling escape"))?;
                            symbols.push(self.lookup(c)?);
                        }
                        Some(c) => symbols.push(self.lookup(c)?),
                    }
                }
                if symbols.is_empty() {
                    return Err(self.error("empty character class"));
                }
                Ok(Ast::Class(symbols))
            }
            Some('.') => {
                self.bump();
                Ok(Ast::Class(self.alphabet.symbols().collect()))
            }
            Some('\\') => {
                self.bump();
                let c = self.bump().ok_or_else(|| self.error("dangling escape"))?;
                Ok(Ast::Literal(self.lookup(c)?))
            }
            Some(c) if METACHARS.contains(&c) => Err(self.error(format!("unexpected {c:?}"))),
            Some(c) => {
                self.bump();
                Ok(Ast::Literal(self.lookup(c)?))
            }
        }
    }

    fn lookup(&self, c: char) -> Result<Symbol, AutomataError> {
        self.alphabet.symbol(c).ok_or(AutomataError::UnknownSymbol(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Word;

    fn sigma() -> Alphabet {
        Alphabet::from_chars("ab").unwrap()
    }

    fn matches(pattern: &str, text: &str) -> bool {
        let sigma = sigma();
        let re = Regex::parse(pattern, &sigma).unwrap();
        re.compile().accepts(&Word::from_str(text, &sigma).unwrap())
    }

    #[test]
    fn literals_and_concat() {
        assert!(matches("ab", "ab"));
        assert!(!matches("ab", "a"));
        assert!(!matches("ab", "ba"));
        assert!(!matches("ab", "abb"));
    }

    #[test]
    fn empty_pattern_matches_empty_word() {
        assert!(matches("", ""));
        assert!(!matches("", "a"));
    }

    #[test]
    fn alternation() {
        assert!(matches("a|b", "a"));
        assert!(matches("a|b", "b"));
        assert!(!matches("a|b", "ab"));
        assert!(matches("ab|ba", "ba"));
        assert!(matches("a|", "")); // right side empty
    }

    #[test]
    fn star_plus_optional() {
        assert!(matches("a*", ""));
        assert!(matches("a*", "aaaa"));
        assert!(!matches("a+", ""));
        assert!(matches("a+", "aaa"));
        assert!(matches("a?", ""));
        assert!(matches("a?", "a"));
        assert!(!matches("a?", "aa"));
    }

    #[test]
    fn grouping_and_nesting() {
        assert!(matches("(ab)*", ""));
        assert!(matches("(ab)*", "ababab"));
        assert!(!matches("(ab)*", "aba"));
        assert!(matches("((a|b)b)+", "abbb"));
        assert!(matches("a(ba)*b?", "ababab"));
    }

    #[test]
    fn dot_and_classes() {
        assert!(matches(".", "a"));
        assert!(matches(".", "b"));
        assert!(!matches(".", ""));
        assert!(matches("[ab]a", "aa"));
        assert!(matches("[ab]a", "ba"));
        assert!(matches("..*", "abbab"));
    }

    #[test]
    fn stacked_quantifiers() {
        // (a*)* etc. must not loop forever during construction or matching.
        assert!(matches("(a*)*", "aaa"));
        assert!(matches("(a*)*", ""));
        assert!(matches("(a?)+", ""));
    }

    #[test]
    fn parse_errors_have_positions() {
        let sigma = sigma();
        match Regex::parse("a)b", &sigma) {
            Err(AutomataError::RegexParse { at, .. }) => assert_eq!(at, 1),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(Regex::parse("(ab", &sigma).is_err());
        assert!(Regex::parse("[", &sigma).is_err());
        assert!(Regex::parse("[]", &sigma).is_err());
        assert!(Regex::parse("a\\", &sigma).is_err());
        assert!(matches!(Regex::parse("ax", &sigma), Err(AutomataError::UnknownSymbol('x'))));
    }

    #[test]
    fn leading_quantifier_rejected() {
        assert!(Regex::parse("*a", &sigma()).is_err());
        assert!(Regex::parse("|*", &sigma()).is_err());
    }

    #[test]
    fn dragon_book_pattern() {
        let sigma = sigma();
        let d = Regex::parse("(a|b)*abb", &sigma).unwrap().compile().minimized();
        assert_eq!(d.state_count(), 4);
        assert!(d.accepts(&Word::from_str("aabb", &sigma).unwrap()));
        assert!(!d.accepts(&Word::from_str("abab", &sigma).unwrap()));
    }

    #[test]
    fn pattern_accessor_roundtrip() {
        let re = Regex::parse("(ab)*", &sigma()).unwrap();
        assert_eq!(re.pattern(), "(ab)*");
        assert_eq!(re.alphabet().len(), 2);
    }
}
