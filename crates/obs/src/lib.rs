//! Unified metrics & timing layer for the ringleader workspace.
//!
//! Policy: wallclock-in-sim carve-out — `ringleader_obs` is the one
//! non-test place in the workspace allowed to read monotonic wall time
//! (`std::time::Instant`). Result-affecting crates record durations
//! through the opaque [`Timer`] / [`Metrics::shard_phase`] handles and
//! never see a time value; detlint's `wallclock-in-sim` rule recognises
//! this header and exempts the crate, while its `obs-boundary` rule
//! bans reading metric values back out of the registry in those crates.
//!
//! # Design
//!
//! [`Metrics`] is a cheap cloneable handle, either *disabled* (the
//! default: a `None` inside, every record call an inlined no-op) or
//! *enabled* (a shared registry of named counters, max-gauges,
//! log2-bucketed histograms, timing summaries, and per-shard
//! busy/idle/blocked phase timelines). Histogram buckets are fixed
//! powers of two so dumps are deterministic and diffable across runs
//! and machines.
//!
//! # The metrics-never-affect-results contract
//!
//! Instrumented code *writes* into the registry and never reads from
//! it: recording methods return `()`, timers are consumed by `Drop`,
//! and the value-reading accessors ([`Metrics::run_report`],
//! [`Metrics::counter_value`], [`Metrics::gauge_value`]) are reserved
//! for tests, this crate, and report export. A run with metrics
//! enabled must therefore be byte-identical to the same run with
//! metrics disabled — the sim test suite pins exactly that across
//! engines, schedulers, and shard counts.
//!
//! # RunReport
//!
//! [`RunReport`] is the versioned JSON export written by
//! `experiments --metrics <path>`: schema changes bump
//! [`REPORT_VERSION`] and [`RunReport::from_json`] rejects reports
//! written by a different version, mirroring the engine snapshot gate.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Schema version stamped into every [`RunReport`]; bump on any field
/// change so old readers fail loudly instead of misparsing.
pub const REPORT_VERSION: u32 = 1;

/// Number of log2 histogram buckets: bucket 0 holds zeros, bucket `i`
/// (1 ≤ i ≤ 64) holds values in `[2^(i-1), 2^i - 1]`.
const HISTOGRAM_BUCKETS: usize = 65;

/// Which phase a shard worker is in; see [`Metrics::shard_phase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Executing granted work (an epoch or a one-pick job).
    Busy,
    /// Waiting on the coordinator for the next job.
    Idle,
    /// Waiting on a neighbouring shard for a boundary handoff.
    Blocked,
}

#[derive(Debug, Default)]
struct ShardTimeline {
    phase: Option<Phase>,
    since: Option<Instant>,
    busy_ns: u64,
    idle_ns: u64,
    blocked_ns: u64,
}

#[derive(Debug, Default)]
struct TimerStats {
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

#[derive(Debug, Default)]
struct State {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Box<[u64; HISTOGRAM_BUCKETS]>>,
    timings: BTreeMap<&'static str, TimerStats>,
    shards: BTreeMap<usize, ShardTimeline>,
}

impl State {
    fn advance_shard(&mut self, shard: usize, phase: Option<Phase>, now: Instant) {
        let timeline = self.shards.entry(shard).or_default();
        if let (Some(prev), Some(since)) = (timeline.phase, timeline.since) {
            let elapsed = now.duration_since(since).as_nanos() as u64;
            match prev {
                Phase::Busy => timeline.busy_ns += elapsed,
                Phase::Idle => timeline.idle_ns += elapsed,
                Phase::Blocked => timeline.blocked_ns += elapsed,
            }
        }
        timeline.phase = phase;
        timeline.since = Some(now);
    }
}

#[derive(Debug, Default)]
struct Inner {
    state: Mutex<State>,
}

/// Cheap cloneable metrics handle. [`Metrics::default`] is disabled:
/// every recording method is an inlined no-op and the run behaves as
/// if the handle did not exist. [`Metrics::enabled`] shares one
/// registry across all clones.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    inner: Option<Arc<Inner>>,
}

impl Metrics {
    /// A live handle: all clones record into one shared registry.
    pub fn enabled() -> Self {
        Metrics { inner: Some(Arc::new(Inner::default())) }
    }

    /// The no-op handle; same as [`Metrics::default`].
    pub fn disabled() -> Self {
        Metrics::default()
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Add `delta` to the named counter.
    #[inline]
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        if let Some(inner) = &self.inner {
            *inner.state.lock().counters.entry(name).or_insert(0) += delta;
        }
    }

    /// Raise the named gauge to `value` if it exceeds the current max.
    #[inline]
    pub fn gauge_max(&self, name: &'static str, value: u64) {
        if let Some(inner) = &self.inner {
            let mut state = inner.state.lock();
            let slot = state.gauges.entry(name).or_insert(0);
            *slot = (*slot).max(value);
        }
    }

    /// Record one observation into the named log2 histogram.
    #[inline]
    pub fn record_histogram(&self, name: &'static str, value: u64) {
        if let Some(inner) = &self.inner {
            let mut state = inner.state.lock();
            let buckets =
                state.histograms.entry(name).or_insert_with(|| Box::new([0u64; HISTOGRAM_BUCKETS]));
            buckets[bucket_index(value)] += 1;
        }
    }

    /// Start an opaque timer; its elapsed wall time is folded into the
    /// named timing summary when the returned handle drops. Disabled
    /// handles return an inert timer that never reads the clock.
    #[inline]
    pub fn start_timer(&self, name: &'static str) -> Timer {
        Timer { live: self.inner.as_ref().map(|inner| (Arc::clone(inner), name, Instant::now())) }
    }

    /// Record that shard `shard`'s worker entered `phase`; the time
    /// since its previous transition accrues to the previous phase.
    #[inline]
    pub fn shard_phase(&self, shard: usize, phase: Phase) {
        if let Some(inner) = &self.inner {
            let now = Instant::now();
            inner.state.lock().advance_shard(shard, Some(phase), now);
        }
    }

    /// Close shard `shard`'s open phase interval (worker shutdown).
    #[inline]
    pub fn shard_done(&self, shard: usize) {
        if let Some(inner) = &self.inner {
            let now = Instant::now();
            inner.state.lock().advance_shard(shard, None, now);
        }
    }

    /// Snapshot the registry as a versioned [`RunReport`].
    ///
    /// Value-reading accessor: banned by detlint's `obs-boundary` rule
    /// in result-affecting `src/` — call it from tests or export paths.
    pub fn run_report(&self) -> RunReport {
        let mut report = RunReport {
            version: REPORT_VERSION,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            timings: BTreeMap::new(),
            shard_utilization: Vec::new(),
        };
        let Some(inner) = &self.inner else { return report };
        let state = inner.state.lock();
        for (&name, &value) in &state.counters {
            report.counters.insert(name.to_string(), value);
        }
        for (&name, &value) in &state.gauges {
            report.gauges.insert(name.to_string(), value);
        }
        for (&name, buckets) in &state.histograms {
            let dumped: Vec<HistogramBucket> = buckets
                .iter()
                .enumerate()
                .filter(|(_, &count)| count > 0)
                .map(|(i, &count)| HistogramBucket {
                    lo: if i == 0 { 0 } else { 1u64 << (i - 1) },
                    hi: if i == 0 {
                        0
                    } else if i == 64 {
                        u64::MAX
                    } else {
                        (1u64 << i) - 1
                    },
                    count,
                })
                .collect();
            report.histograms.insert(name.to_string(), dumped);
        }
        for (&name, stats) in &state.timings {
            report.timings.insert(
                name.to_string(),
                TimingSummary {
                    count: stats.count,
                    total_ns: stats.total_ns,
                    max_ns: stats.max_ns,
                },
            );
        }
        for (&shard, timeline) in &state.shards {
            report.shard_utilization.push(ShardUtilization {
                shard,
                busy_ns: timeline.busy_ns,
                idle_ns: timeline.idle_ns,
                blocked_ns: timeline.blocked_ns,
            });
        }
        report
    }

    /// Current value of a counter (0 when disabled or never bumped).
    ///
    /// Value-reading accessor: banned by detlint's `obs-boundary` rule
    /// in result-affecting `src/` — call it from tests.
    pub fn counter_value(&self, name: &str) -> u64 {
        match &self.inner {
            Some(inner) => inner.state.lock().counters.get(name).copied().unwrap_or(0),
            None => 0,
        }
    }

    /// Current value of a gauge (0 when disabled or never raised).
    ///
    /// Value-reading accessor: banned by detlint's `obs-boundary` rule
    /// in result-affecting `src/` — call it from tests.
    pub fn gauge_value(&self, name: &str) -> u64 {
        match &self.inner {
            Some(inner) => inner.state.lock().gauges.get(name).copied().unwrap_or(0),
            None => 0,
        }
    }

    /// Serialize the current [`RunReport`] as pretty JSON to `path`.
    /// No-op (writes nothing) on a disabled handle.
    pub fn write_report(&self, path: &std::path::Path) -> std::io::Result<()> {
        if !self.is_enabled() {
            return Ok(());
        }
        let report = self.run_report();
        std::fs::write(path, format!("{}\n", report.to_json_pretty()))
    }
}

/// Opaque RAII timing handle from [`Metrics::start_timer`]; records
/// elapsed wall time into the registry on drop. The holder never sees
/// a time value.
#[derive(Debug)]
pub struct Timer {
    live: Option<(Arc<Inner>, &'static str, Instant)>,
}

impl Drop for Timer {
    fn drop(&mut self) {
        if let Some((inner, name, start)) = self.live.take() {
            let elapsed = start.elapsed().as_nanos() as u64;
            let mut state = inner.state.lock();
            let stats = state.timings.entry(name).or_default();
            stats.count += 1;
            stats.total_ns += elapsed;
            stats.max_ns = stats.max_ns.max(elapsed);
        }
    }
}

/// Map a value to its fixed log2 bucket: 0 → bucket 0, otherwise
/// bucket `i` covers `[2^(i-1), 2^i - 1]`.
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// One nonzero log2 histogram bucket in a [`RunReport`] dump; `lo..=hi`
/// is the covered value range.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Smallest value this bucket covers.
    pub lo: u64,
    /// Largest value this bucket covers.
    pub hi: u64,
    /// Observations recorded into the bucket.
    pub count: u64,
}

/// Folded summary of one named timer in a [`RunReport`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingSummary {
    /// Completed timer handles.
    pub count: u64,
    /// Sum of elapsed wall time, nanoseconds.
    pub total_ns: u64,
    /// Longest single handle, nanoseconds.
    pub max_ns: u64,
}

/// Per-shard busy/idle/blocked wall-time split — the multi-core
/// utilization answer for the sharded engine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardUtilization {
    /// Shard index.
    pub shard: usize,
    /// Nanoseconds spent executing granted work.
    pub busy_ns: u64,
    /// Nanoseconds spent waiting on the coordinator.
    pub idle_ns: u64,
    /// Nanoseconds spent waiting on boundary handoffs.
    pub blocked_ns: u64,
}

/// Versioned JSON export of a [`Metrics`] registry; the artifact behind
/// `experiments --metrics <path>`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunReport {
    /// Always [`REPORT_VERSION`] for reports this build writes.
    pub version: u32,
    /// Monotonic named counters.
    pub counters: BTreeMap<String, u64>,
    /// Named max-gauges.
    pub gauges: BTreeMap<String, u64>,
    /// Named log2 histograms, nonzero buckets only.
    pub histograms: BTreeMap<String, Vec<HistogramBucket>>,
    /// Named timing summaries.
    pub timings: BTreeMap<String, TimingSummary>,
    /// Per-shard phase timelines, in shard order.
    pub shard_utilization: Vec<ShardUtilization>,
}

/// Error from [`RunReport::from_json`]: unparsable text or a report
/// written by a different schema version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportError {
    /// Human-readable cause.
    pub reason: String,
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "run report error: {}", self.reason)
    }
}

impl std::error::Error for ReportError {}

impl RunReport {
    /// Render as pretty JSON (no trailing newline).
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("RunReport serializes infallibly")
    }

    /// Parse a report, rejecting schema versions this build does not
    /// read — the same loud-failure gate as the engine snapshot.
    pub fn from_json(text: &str) -> Result<RunReport, ReportError> {
        let report: RunReport = serde_json::from_str(text)
            .map_err(|e| ReportError { reason: format!("unparsable run report: {e:?}") })?;
        if report.version != REPORT_VERSION {
            return Err(ReportError {
                reason: format!(
                    "run report version {} unsupported (this build reads {REPORT_VERSION})",
                    report.version
                ),
            });
        }
        Ok(report)
    }
}

/// Stderr heartbeat for massive runs: [`Progress::tick`] prints one
/// `[progress]` line per call with elapsed wall time and a label.
/// Stderr only — the JSON envelope on stdout is untouched, keeping
/// `--progress` inside the metrics-never-affect-results contract.
#[derive(Debug)]
pub struct Progress {
    started: Option<Instant>,
}

impl Progress {
    /// An active heartbeat when `enabled`, otherwise an inert one.
    pub fn new(enabled: bool) -> Self {
        Progress { started: enabled.then(Instant::now) }
    }

    /// Print one heartbeat line to stderr (no-op when inert).
    pub fn tick(&self, label: &str) {
        if let Some(started) = self.started {
            let elapsed = started.elapsed();
            eprintln!("[progress] {:.1}s {label}", elapsed.as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let m = Metrics::disabled();
        assert!(!m.is_enabled());
        m.counter_add("engine.deliveries", 5);
        m.gauge_max("engine.bit_rounds", 9);
        m.record_histogram("shard.epoch_len", 12);
        m.shard_phase(0, Phase::Busy);
        drop(m.start_timer("checkpoint.capture"));
        assert_eq!(m.counter_value("engine.deliveries"), 0);
        assert_eq!(m.gauge_value("engine.bit_rounds"), 0);
        let report = m.run_report();
        assert!(report.counters.is_empty());
        assert!(report.histograms.is_empty());
        assert!(report.timings.is_empty());
        assert!(report.shard_utilization.is_empty());
    }

    #[test]
    fn counters_and_gauges_accumulate_across_clones() {
        let m = Metrics::enabled();
        let other = m.clone();
        m.counter_add("engine.deliveries", 3);
        other.counter_add("engine.deliveries", 4);
        m.gauge_max("engine.bit_rounds", 7);
        other.gauge_max("engine.bit_rounds", 5);
        assert_eq!(m.counter_value("engine.deliveries"), 7);
        assert_eq!(m.gauge_value("engine.bit_rounds"), 7);
    }

    #[test]
    fn histogram_buckets_are_log2_and_deterministic() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);

        let m = Metrics::enabled();
        m.record_histogram("shard.epoch_len", 0);
        m.record_histogram("shard.epoch_len", 3);
        m.record_histogram("shard.epoch_len", 3);
        m.record_histogram("shard.epoch_len", 100);
        let report = m.run_report();
        let buckets = &report.histograms["shard.epoch_len"];
        assert_eq!(
            buckets,
            &vec![
                HistogramBucket { lo: 0, hi: 0, count: 1 },
                HistogramBucket { lo: 2, hi: 3, count: 2 },
                HistogramBucket { lo: 64, hi: 127, count: 1 },
            ]
        );
    }

    #[test]
    fn timers_fold_into_summaries() {
        let m = Metrics::enabled();
        drop(m.start_timer("checkpoint.capture"));
        drop(m.start_timer("checkpoint.capture"));
        let report = m.run_report();
        let summary = &report.timings["checkpoint.capture"];
        assert_eq!(summary.count, 2);
        assert!(summary.max_ns <= summary.total_ns);
    }

    #[test]
    fn shard_phases_accrue_to_the_previous_phase() {
        let m = Metrics::enabled();
        m.shard_phase(1, Phase::Idle);
        m.shard_phase(1, Phase::Busy);
        m.shard_phase(1, Phase::Blocked);
        m.shard_done(1);
        let report = m.run_report();
        assert_eq!(report.shard_utilization.len(), 1);
        let util = &report.shard_utilization[0];
        assert_eq!(util.shard, 1);
        // Every phase was entered and later exited, so each accrued
        // some (possibly sub-microsecond but nonnegative) time; the
        // struct itself must list all three splits.
        let _ = util.busy_ns + util.idle_ns + util.blocked_ns;
    }

    #[test]
    fn run_report_round_trips_through_json() {
        let m = Metrics::enabled();
        m.counter_add("engine.deliveries", 4096);
        m.counter_add("shard.epoch_grants", 9);
        m.gauge_max("engine.max_message_bits", 13);
        m.record_histogram("shard.epoch_len", 2048);
        drop(m.start_timer("checkpoint.capture"));
        m.shard_phase(0, Phase::Busy);
        m.shard_done(0);
        let report = m.run_report();
        let text = report.to_json_pretty();
        let back = RunReport::from_json(&text).expect("round trip");
        assert_eq!(back, report);
        assert_eq!(back.version, REPORT_VERSION);
    }

    #[test]
    fn run_report_rejects_foreign_versions() {
        let m = Metrics::enabled();
        m.counter_add("engine.deliveries", 1);
        let mut report = m.run_report();
        report.version = REPORT_VERSION + 1;
        let text = report.to_json_pretty();
        let err = RunReport::from_json(&text).expect_err("version gate");
        assert!(err.reason.contains("unsupported"), "{err}");
        let garbage = RunReport::from_json("{not json").expect_err("parse gate");
        assert!(garbage.reason.contains("unparsable"), "{garbage}");
    }

    #[test]
    fn report_dump_is_deterministic_and_diffable() {
        let build = || {
            let m = Metrics::enabled();
            // Insertion order differs between the two handles; the
            // dump must not care.
            m.counter_add("z.last", 1);
            m.counter_add("a.first", 2);
            m.gauge_max("m.mid", 3);
            m.run_report()
        };
        let build_rev = || {
            let m = Metrics::enabled();
            m.gauge_max("m.mid", 3);
            m.counter_add("a.first", 2);
            m.counter_add("z.last", 1);
            m.run_report()
        };
        assert_eq!(build().to_json_pretty(), build_rev().to_json_pretty());
    }
}
